#include "ehw/svc/protocol.hpp"

#include <cstdio>

#include "ehw/common/rng.hpp"

namespace ehw::svc {
namespace {

/// Stringifies a JSON scalar into the manifest value vocabulary so the
/// shared sched::apply_spec_option performs ALL interpretation (one
/// validation path for manifest lines and submit payloads).
std::string scalar_to_option_value(const Json& value, bool& ok) {
  ok = true;
  if (value.is_string()) return value.as_string();
  if (value.is_bool()) return value.as_bool() ? "1" : "0";
  if (value.is_number()) {
    char buf[32];
    const double n = value.as_number();
    if (json_number_is_exact_int(n) && n >= 0) {
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(n));
    } else {
      std::snprintf(buf, sizeof buf, "%.17g", n);
    }
    return buf;
  }
  ok = false;
  return {};
}

}  // namespace

const char* status_name(sched::JobStatus status) noexcept {
  switch (status) {
    case sched::JobStatus::kQueued: return "queued";
    case sched::JobStatus::kRunning: return "running";
    case sched::JobStatus::kDone: return "done";
    case sched::JobStatus::kFailed: return "failed";
    case sched::JobStatus::kCancelled: return "cancelled";
    case sched::JobStatus::kPreempted: return "preempted";
  }
  return "?";
}

std::string hash_hex(std::uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

Json spec_to_json(const sched::MissionSpec& spec) {
  Json payload = Json::object();
  payload.set("kind", sched::kind_name(spec.kind));
  payload.set("name", spec.name);
  payload.set("lanes", static_cast<std::uint64_t>(spec.lanes));
  payload.set("priority", spec.priority);
  payload.set("generations", static_cast<std::uint64_t>(spec.generations));
  payload.set("size", static_cast<std::uint64_t>(spec.size));
  payload.set("noise", spec.noise);
  payload.set("rate", static_cast<std::uint64_t>(spec.mutation_rate));
  payload.set("lambda", static_cast<std::uint64_t>(spec.lambda));
  // Seeds are full 64-bit values; as JSON numbers they would round at
  // 2^53 and silently change the mission. Strings keep them bit-exact
  // (apply_spec_option parses decimal strings natively).
  payload.set("seed", std::to_string(spec.seed));
  payload.set("scene-seed", std::to_string(spec.scene_seed));
  payload.set("two-level", spec.two_level);
  payload.set("merged", spec.merged_fitness);
  payload.set("interleaved", spec.interleaved);
  return payload;
}

namespace {

/// Applies one payload object's keys onto `spec` (no final validation);
/// `saw_kind` accumulates across calls so defaults may supply the kind.
std::string apply_spec_json(const Json& payload, sched::MissionSpec& spec,
                            bool& saw_kind) {
  if (!payload.is_object()) return "spec must be a JSON object";
  for (const auto& [key, value] : payload.as_object()) {
    if (key == "kind") {
      if (!value.is_string() || !sched::parse_kind(value.as_string(),
                                                   spec.kind)) {
        return "unknown mission kind '" +
               (value.is_string() ? value.as_string() : value.dump()) + "'";
      }
      saw_kind = true;
      continue;
    }
    if (key == "name") {
      if (!value.is_string()) return "mission name must be a string";
      spec.name = value.as_string();
      continue;
    }
    bool scalar = false;
    const std::string text = scalar_to_option_value(value, scalar);
    if (!scalar) return "value for '" + key + "' must be a scalar";
    const std::string error = sched::apply_spec_option(spec, key, text);
    if (!error.empty()) return error;
  }
  return {};
}

}  // namespace

std::string spec_from_json(const Json& payload, sched::MissionSpec& spec) {
  bool saw_kind = false;
  const std::string error = apply_spec_json(payload, spec, saw_kind);
  if (!error.empty()) return error;
  if (!saw_kind) return "spec is missing 'kind'";
  return sched::validate_spec(spec);
}

std::string batch_specs_from_json(const Json& request,
                                  std::vector<sched::MissionSpec>& specs) {
  const Json* specs_field = request.get("specs");
  if (specs_field == nullptr || !specs_field->is_array()) {
    return "submit_batch needs a 'specs' array";
  }
  if (specs_field->as_array().empty()) return "'specs' must not be empty";

  // The shared half of every spec (the common frame: kind, size,
  // scene-seed, noise...), applied before each spec's own options.
  sched::MissionSpec base;
  bool base_kind = false;
  if (const Json* defaults = request.get("defaults")) {
    const std::string error = apply_spec_json(*defaults, base, base_kind);
    if (!error.empty()) return "defaults: " + error;
  }

  specs.clear();
  specs.reserve(specs_field->as_array().size());
  std::size_t index = 0;
  for (const Json& payload : specs_field->as_array()) {
    sched::MissionSpec spec = base;
    bool saw_kind = base_kind;
    const auto fail = [&index](const std::string& what) {
      return "spec " + std::to_string(index) + ": " + what;
    };
    std::string error = apply_spec_json(payload, spec, saw_kind);
    if (!error.empty()) return fail(error);
    if (!saw_kind) return fail("missing 'kind'");
    error = sched::validate_spec(spec);
    if (!error.empty()) return fail(error);
    for (const sched::MissionSpec& earlier : specs) {
      if (earlier.name == spec.name) {
        return fail("duplicate mission name '" + spec.name + "'");
      }
    }
    specs.push_back(std::move(spec));
    ++index;
  }
  return {};
}

Json outcome_to_json(sched::MissionKind kind, sched::JobStatus status,
                     const sched::JobOutcome& outcome) {
  Json result = Json::object();
  result.set("status", status_name(status));
  if (!outcome.error.empty()) result.set("error", outcome.error);
  result.set("cache_hits", outcome.stats.cache_hits);
  result.set("cache_misses", outcome.stats.cache_misses);
  result.set("memo_hits", outcome.stats.memo_hits);
  result.set("memo_misses", outcome.stats.memo_misses);
  // Additive: phase-time breakdown from the span guards, when the
  // scheduler collected one. Present for any terminal status (a failed
  // mission's partial profile is exactly what an operator wants to see).
  if (!outcome.profile.is_null()) result.set("profile", outcome.profile);
  if (status != sched::JobStatus::kDone) return result;

  result.set("sim_ns",
             std::to_string(outcome.stats.mission_time));  // bit-exact
  result.set("sim_s", sim::to_seconds(outcome.stats.mission_time));
  if (kind == sched::MissionKind::kCascade) {
    result.set("best_fitness",
               static_cast<std::uint64_t>(outcome.cascade.chain_fitness));
    std::uint64_t chain_hash = 0;
    Json stages = Json::array();
    for (const platform::CascadeStageOutcome& stage :
         outcome.cascade.stages) {
      const std::uint64_t stage_hash = stage.best.hash();
      chain_hash = hash_mix(chain_hash, stage_hash);
      Json entry = Json::object();
      entry.set("fitness", static_cast<std::uint64_t>(stage.stage_fitness));
      entry.set("genotype_hash", hash_hex(stage_hash));
      stages.push_back(std::move(entry));
    }
    result.set("genotype_hash", hash_hex(chain_hash));
    result.set("stages", std::move(stages));
  } else {
    result.set("generations",
               static_cast<std::uint64_t>(outcome.intrinsic.es.generations_run));
    result.set("best_fitness",
               static_cast<std::uint64_t>(outcome.intrinsic.es.best_fitness));
    result.set("genotype_hash", hash_hex(outcome.intrinsic.es.best.hash()));
    result.set("pe_writes", outcome.intrinsic.pe_writes);
  }
  return result;
}

Json make_ok() {
  Json response = Json::object();
  response.set("ok", true);
  return response;
}

Json make_error(const std::string& message, const std::string& code) {
  Json response = Json::object();
  response.set("ok", false);
  response.set("error", message);
  if (!code.empty()) response.set("code", code);
  return response;
}

}  // namespace ehw::svc
