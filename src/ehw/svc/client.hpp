#pragma once
// svc::Client — small blocking client for the mission service. Used by
// the `mpa submit` / `mpa ps` / `mpa cancel` / `mpa drain` subcommands,
// the service tests and the throughput bench.
//
// One Client == one connection == one thread of use (the request loop is
// strictly request/response; `watch` turns the connection into an event
// stream until its job finishes). Connection or handshake failures throw
// std::runtime_error; per-request rejections (queue_full, draining,
// unknown job) come back as data so callers can react without
// exception-driven control flow.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ehw/svc/protocol.hpp"
#include "ehw/svc/socket.hpp"

namespace ehw::svc {

class Client {
 public:
  /// Connects and performs the versioned handshake. Throws
  /// std::runtime_error on connection failure, a non-service peer, or a
  /// protocol version mismatch. `io_timeout_ms` (0 = none) bounds every
  /// socket read AND write (SO_RCVTIMEO/SO_SNDTIMEO), so a stalled or
  /// dead daemon surfaces as a lost connection instead of a hang — note
  /// it also bounds the blocking `result` wait, so pair it with ops that
  /// poll (status) or with with_retry for long missions.
  explicit Client(std::uint16_t port,
                  const std::string& address = "127.0.0.1",
                  int io_timeout_ms = 0);

  /// Server build version reported in the handshake.
  [[nodiscard]] const std::string& server_version() const noexcept {
    return server_version_;
  }
  /// Membership identity from the greeting: a persistent per-daemon id
  /// and a restart-bumped epoch (empty/0 against pre-epoch daemons and
  /// forwarders, which have no single backend identity).
  [[nodiscard]] const std::string& server_instance_id() const noexcept {
    return server_instance_id_;
  }
  [[nodiscard]] std::uint64_t server_epoch() const noexcept {
    return server_epoch_;
  }

  struct Submitted {
    bool ok = false;
    std::uint64_t job = 0;
    std::string error;  // server message when !ok
    std::string code;   // machine tag: queue_full, draining, bad_spec...
    /// Backpressure hint on a queue_full rejection (0 = none given).
    std::uint64_t retry_after_ms = 0;
  };
  [[nodiscard]] Submitted submit(const sched::MissionSpec& spec);

  /// One submit_batch round trip: every spec accepted (job ids in spec
  /// order) or the whole batch rejected — admission is atomic
  /// server-side. Swarm clients submit a whole manifest in one request
  /// instead of one round trip per mission.
  struct BatchSubmitted {
    bool ok = false;
    std::vector<std::uint64_t> jobs;  // spec order; empty when !ok
    std::string error;
    std::string code;
  };
  [[nodiscard]] BatchSubmitted submit_batch(
      const std::vector<sched::MissionSpec>& specs);

  /// Raw request/response round trip (adds nothing to `request`).
  [[nodiscard]] Json request(const Json& request);

  [[nodiscard]] Json status(std::uint64_t job);
  /// Status looked up by mission name (latest submission wins) — the
  /// idempotency probe: a name the service already knows (live registry
  /// or replayed journal) must not be submitted again.
  [[nodiscard]] Json status_by_name(const std::string& name);
  /// Blocks until the job finishes server-side; returns the full result
  /// payload (status, best_fitness, genotype_hash, sim_ns, ...).
  [[nodiscard]] Json result(std::uint64_t job);
  [[nodiscard]] Json result_by_name(const std::string& name);
  [[nodiscard]] bool cancel(std::uint64_t job);
  [[nodiscard]] Json list();
  [[nodiscard]] Json stats();
  [[nodiscard]] Json drain(bool wait);

  /// Subscribes to the job's progress stream and blocks until it
  /// finishes; `on_progress` (optional) sees each waves count. The
  /// server registers the subscription before acking, so every wave
  /// after `on_subscribed` fires (optional; e.g. a test barrier) is
  /// observed. Returns the final status name ("done", "failed",
  /// "cancelled").
  [[nodiscard]] std::string watch(
      std::uint64_t job,
      const std::function<void(std::uint64_t waves)>& on_progress = {},
      std::uint64_t every = 1,
      const std::function<void()>& on_subscribed = {});

  /// watch keyed by mission name (latest submission with that name wins
  /// server-side) — the form that survives the job id changing across a
  /// daemon restart or a forwarder failover.
  [[nodiscard]] std::string watch_by_name(
      const std::string& name,
      const std::function<void(std::uint64_t waves)>& on_progress = {},
      std::uint64_t every = 1,
      const std::function<void()>& on_subscribed = {});

 private:
  [[nodiscard]] Json roundtrip(const Json& request);
  [[nodiscard]] Json job_op(const char* op, std::uint64_t job);
  [[nodiscard]] Json named_op(const char* op, const std::string& name);
  [[nodiscard]] std::string watch_request(
      Json request, const std::function<void(std::uint64_t waves)>& on_progress,
      const std::function<void()>& on_subscribed);

  LineChannel channel_;
  std::string server_version_;
  std::string server_instance_id_;
  std::uint64_t server_epoch_ = 0;
};

/// Reconnect policy for the retrying helpers below.
struct RetryPolicy {
  /// Additional connection attempts after the first (0 = fail fast).
  int retries = 0;
  /// Delay before the first retry; doubles on each subsequent attempt.
  int backoff_ms = 100;
  /// Per-connection socket read/write bound (see Client ctor).
  int io_timeout_ms = 0;
};

/// Runs `op` against a fresh connection, reconnecting with exponential
/// backoff when the daemon is unreachable or the connection is lost
/// mid-call (including io_timeout_ms expiries). `op` MUST be idempotent:
/// after a lost ack it runs again against a new connection. A returned
/// queue_full rejection carrying a `retry_after_ms` hint is also
/// retried (admission refused = nothing ran = idempotent), sleeping
/// max(hint, backoff); the final attempt's rejection passes through so
/// callers still see the code. Throws std::runtime_error once every
/// attempt is exhausted without reaching the service.
[[nodiscard]] Json with_retry(std::uint16_t port, const std::string& address,
                              const RetryPolicy& policy,
                              const std::function<Json(Client&)>& op);

/// At-most-once submit across reconnects AND daemon restarts: each
/// attempt first resolves the mission by name (status_by_name) and only
/// submits when the service does not know it — so a resubmit after a
/// lost ack, or against a restarted daemon that replayed its journal,
/// never double-runs the mission.
struct IdempotentSubmit {
  bool ok = false;
  std::uint64_t job = 0;
  /// The name already resolved server-side; no new mission was started.
  bool already_known = false;
  std::string error;  // server/transport message when !ok
  std::string code;   // machine tag (queue_full, draining, ...)
};
[[nodiscard]] IdempotentSubmit submit_idempotent(std::uint16_t port,
                                                 const std::string& address,
                                                 const sched::MissionSpec& spec,
                                                 const RetryPolicy& policy);

/// Watches a mission BY NAME across reconnects: when the event stream
/// drops mid-mission (daemon restart, forwarder failover, socket
/// timeout), a fresh connection re-resolves the name and re-subscribes,
/// so `mpa submit --wait` rides through transparently. A successful
/// re-subscription refills the retry budget — `policy.retries` bounds
/// consecutive FAILED reconnects, not the mission's lifetime. Returns
/// the final status name; throws std::runtime_error once the budget is
/// exhausted without a terminal status.
[[nodiscard]] std::string watch_mission(
    std::uint16_t port, const std::string& address, const std::string& name,
    const RetryPolicy& policy,
    const std::function<void(std::uint64_t waves)>& on_progress = {},
    std::uint64_t every = 1);

}  // namespace ehw::svc
