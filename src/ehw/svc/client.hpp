#pragma once
// svc::Client — small blocking client for the mission service. Used by
// the `mpa submit` / `mpa ps` / `mpa cancel` / `mpa drain` subcommands,
// the service tests and the throughput bench.
//
// One Client == one connection == one thread of use (the request loop is
// strictly request/response; `watch` turns the connection into an event
// stream until its job finishes). Connection or handshake failures throw
// std::runtime_error; per-request rejections (queue_full, draining,
// unknown job) come back as data so callers can react without
// exception-driven control flow.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ehw/svc/protocol.hpp"
#include "ehw/svc/socket.hpp"

namespace ehw::svc {

class Client {
 public:
  /// Connects and performs the versioned handshake. Throws
  /// std::runtime_error on connection failure, a non-service peer, or a
  /// protocol version mismatch.
  explicit Client(std::uint16_t port,
                  const std::string& address = "127.0.0.1");

  /// Server build version reported in the handshake.
  [[nodiscard]] const std::string& server_version() const noexcept {
    return server_version_;
  }

  struct Submitted {
    bool ok = false;
    std::uint64_t job = 0;
    std::string error;  // server message when !ok
    std::string code;   // machine tag: queue_full, draining, bad_spec...
  };
  [[nodiscard]] Submitted submit(const sched::MissionSpec& spec);

  /// One submit_batch round trip: every spec accepted (job ids in spec
  /// order) or the whole batch rejected — admission is atomic
  /// server-side. Swarm clients submit a whole manifest in one request
  /// instead of one round trip per mission.
  struct BatchSubmitted {
    bool ok = false;
    std::vector<std::uint64_t> jobs;  // spec order; empty when !ok
    std::string error;
    std::string code;
  };
  [[nodiscard]] BatchSubmitted submit_batch(
      const std::vector<sched::MissionSpec>& specs);

  /// Raw request/response round trip (adds nothing to `request`).
  [[nodiscard]] Json request(const Json& request);

  [[nodiscard]] Json status(std::uint64_t job);
  /// Blocks until the job finishes server-side; returns the full result
  /// payload (status, best_fitness, genotype_hash, sim_ns, ...).
  [[nodiscard]] Json result(std::uint64_t job);
  [[nodiscard]] bool cancel(std::uint64_t job);
  [[nodiscard]] Json list();
  [[nodiscard]] Json stats();
  [[nodiscard]] Json drain(bool wait);

  /// Subscribes to the job's progress stream and blocks until it
  /// finishes; `on_progress` (optional) sees each waves count. The
  /// server registers the subscription before acking, so every wave
  /// after `on_subscribed` fires (optional; e.g. a test barrier) is
  /// observed. Returns the final status name ("done", "failed",
  /// "cancelled").
  [[nodiscard]] std::string watch(
      std::uint64_t job,
      const std::function<void(std::uint64_t waves)>& on_progress = {},
      std::uint64_t every = 1,
      const std::function<void()>& on_subscribed = {});

 private:
  [[nodiscard]] Json roundtrip(const Json& request);
  [[nodiscard]] Json job_op(const char* op, std::uint64_t job);

  LineChannel channel_;
  std::string server_version_;
};

}  // namespace ehw::svc
