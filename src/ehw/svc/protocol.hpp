#pragma once
// Wire protocol of the mission service: newline-delimited JSON frames
// over a loopback TCP connection.
//
// Handshake (versioned): on connect the server sends one greeting event
//   {"event":"hello","service":...,"protocol":1,"version":"x.y.z"}
// and the client must answer {"op":"hello","protocol":1} before any
// other op; a protocol mismatch is rejected and the connection closed.
//
// Requests are objects {"op": <name>, ...}; an optional "id" member is
// echoed verbatim into the matching response for client-side request
// correlation. Responses are {"ok":true,...} or
// {"ok":false,"error":<message>,"code":<machine tag>}. Codes the client
// can dispatch on: "queue_full" (admission control), "draining" (drain
// was requested), "bad_spec", "unknown_job", "bad_request",
// "unsupported_protocol".
//
// Ops: hello, submit, submit_batch, status, result (blocks until the job
// finishes), cancel, list, stats, watch (streams
// {"event":"progress"|"done"} frames after its ok-response), drain.
//
// Submit payloads reuse the batch-manifest vocabulary: {"op":"submit",
// "spec":{"kind":"denoise","name":"dn0","lanes":2,"generations":300,...}}
// — every spec key is the manifest key, applied through the same
// sched::apply_spec_option/validate_spec used by `mpa batch`, so the
// service accepts exactly the manifest job kinds with identical
// validation. Values that must be bit-exact at 64 bits travel as
// strings: genotype hashes as 16-digit hex, simulated durations as
// decimal nanoseconds ("sim_ns"), seeds as decimal strings in submit
// payloads (JSON numbers round at 2^53).
//
// submit_batch carries MANY mission specs in one round trip so swarm
// clients amortize connection latency: {"op":"submit_batch","specs":
// [{...},...],"defaults":{...}} — "defaults" (optional) is applied to
// every spec first (the shared frame: kind, size, scene-seed, noise...),
// each spec then overrides per-mission options and must end up with a
// kind and a batch-unique name. Admission is atomic: either every spec
// is accepted ({"ok":true,"jobs":[{"job":id,"name":...},...]} in spec
// order) or the whole batch is rejected (one bad spec names its index;
// "queue_full" when the batch doesn't fit the inflight cap).

#include <string>

#include "ehw/common/json.hpp"
#include "ehw/sched/array_pool.hpp"
#include "ehw/sched/missions.hpp"

namespace ehw::svc {

inline constexpr int kProtocolVersion = 1;
inline constexpr const char* kServiceName = "mpa-ehw-mission-service";

[[nodiscard]] const char* status_name(sched::JobStatus status) noexcept;

/// 16-hex-digit rendering of a 64-bit hash (exact over the wire, where a
/// JSON number would round at 2^53).
[[nodiscard]] std::string hash_hex(std::uint64_t value);

/// Full spec as a submit payload object (every manifest key emitted).
[[nodiscard]] Json spec_to_json(const sched::MissionSpec& spec);

/// Builds a spec from a submit payload object; returns "" on success or
/// an error message (unknown key, bad value, failed validation).
[[nodiscard]] std::string spec_from_json(const Json& payload,
                                         sched::MissionSpec& spec);

/// Builds the spec list of a submit_batch request ("specs" array +
/// optional "defaults" object, batch-unique names enforced); returns ""
/// on success or an error message naming the offending spec index.
[[nodiscard]] std::string batch_specs_from_json(
    const Json& request, std::vector<sched::MissionSpec>& specs);

/// Result payload for a finished job. Carries status + error always;
/// fitness/genotype-hash/duration fields only when the job completed
/// (kDone). For cascades, "genotype_hash" covers the whole chain
/// (hash-mix over the stage hashes) and "stages" lists each stage's own
/// fitness and hash.
[[nodiscard]] Json outcome_to_json(sched::MissionKind kind,
                                   sched::JobStatus status,
                                   const sched::JobOutcome& outcome);

[[nodiscard]] Json make_ok();
[[nodiscard]] Json make_error(const std::string& message,
                              const std::string& code);

}  // namespace ehw::svc
