#pragma once
// Thin POSIX TCP wrappers for the mission service: a loopback listener,
// a move-only connected socket, and a newline-delimited frame channel.
//
// Scope is deliberately small — blocking I/O, IPv4 loopback by default,
// EINTR-safe, SIGPIPE-free (MSG_NOSIGNAL). The protocol layer above
// frames one JSON document per line; LineChannel owns the read buffering
// and serializes concurrent writers (response writer vs. event streamer)
// behind one mutex so frames never interleave mid-line.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace ehw::svc {

/// Move-only owner of a connected socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Blocking read of up to `size` bytes; returns bytes read, 0 on EOF,
  /// -1 on error. Retries EINTR.
  [[nodiscard]] long recv_some(char* data, std::size_t size) noexcept;

  /// Writes the whole buffer (handles partial sends, retries EINTR,
  /// suppresses SIGPIPE). False on any error.
  [[nodiscard]] bool send_all(const char* data, std::size_t size) noexcept;

  /// Bounds how long a send may block on a peer that stopped reading
  /// (SO_SNDTIMEO); after the timeout send_all fails and the channel is
  /// poisoned. Essential server-side: progress events are written from
  /// job threads, which must never be wedged by one stalled client.
  void set_send_timeout(int timeout_ms) noexcept;

  /// Bounds how long a recv may block on a silent peer (SO_RCVTIMEO);
  /// after the timeout recv_some fails and read_line returns false.
  /// Client-side this keeps a stalled daemon from hanging `mpa submit`
  /// forever. 0 disables the bound.
  void set_recv_timeout(int timeout_ms) noexcept;

  /// Shuts down both directions, unblocking any reader on this fd.
  void shutdown_both() noexcept;
  void close() noexcept;

  /// Blocking connect to a TCP endpoint (numeric IPv4 address). Throws
  /// std::runtime_error on failure.
  [[nodiscard]] static Socket connect_to(const std::string& address,
                                         std::uint16_t port);

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to `address`:`port` (port 0 = ephemeral;
/// the bound port is readable afterwards). Throws std::runtime_error on
/// bind/listen failure.
class Listener {
 public:
  Listener(const std::string& address, std::uint16_t port);
  ~Listener() { close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Waits up to `timeout_ms` for a connection; nullopt on timeout or
  /// once closed. The acceptor loop polls so a stop flag can be checked
  /// between calls without platform-specific accept interruption.
  [[nodiscard]] std::optional<Socket> accept_one(int timeout_ms);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Newline-delimited frame channel over a Socket. Reads are single-owner
/// (the session/client thread); writes are serialized by an internal
/// mutex so a progress-event streamer and the response writer can share
/// the connection safely.
class LineChannel {
 public:
  /// Default frame-length bound; longer frames are a protocol error
  /// (bounds per-connection memory against hostile peers).
  static constexpr std::size_t kMaxLine = 1 << 20;

  /// Why a read ended without producing a frame. Sessions use the
  /// distinction to answer with a *clean* protocol error (oversize,
  /// idle timeout) instead of silently dropping the connection.
  enum class ReadStatus {
    kLine,      // a frame was produced
    kClosed,    // EOF or hard socket error
    kOversize,  // peer exceeded max_line without a newline
    kTimeout,   // SO_RCVTIMEO expired with no (complete) frame
  };

  explicit LineChannel(Socket socket) : socket_(std::move(socket)) {}

  /// Next '\n'-terminated frame, without the terminator. False on EOF,
  /// error, or an over-long frame.
  [[nodiscard]] bool read_line(std::string& line) {
    return read_frame(line) == ReadStatus::kLine;
  }

  /// read_line with the failure mode visible.
  [[nodiscard]] ReadStatus read_frame(std::string& line);

  /// Tightens (or relaxes) the frame-length bound for this channel.
  /// Oversize detection discards the partial buffer, so memory stays
  /// bounded by max_line + one recv chunk regardless of peer behavior.
  void set_max_line(std::size_t max_line) noexcept {
    max_line_ = max_line == 0 ? kMaxLine : max_line;
  }
  [[nodiscard]] std::size_t max_line() const noexcept { return max_line_; }

  /// Arms/disarms an idle bound on reads (delegates to the socket's
  /// SO_RCVTIMEO); expiry surfaces as ReadStatus::kTimeout.
  void set_recv_timeout(int timeout_ms) noexcept {
    socket_.set_recv_timeout(timeout_ms);
  }

  /// Writes `line` + '\n' atomically w.r.t. other writers. False once
  /// the peer is gone (subsequent writes keep returning false).
  [[nodiscard]] bool write_line(const std::string& line);

  /// Unblocks the reader and poisons future writes.
  void shutdown() noexcept { socket_.shutdown_both(); }

 private:
  Socket socket_;
  std::string buffer_;       // reader-owned
  std::size_t max_line_ = kMaxLine;  // reader-owned
  std::mutex write_mutex_;   // serializes write_line
  bool write_failed_ = false;  // guarded by write_mutex_
};

}  // namespace ehw::svc
