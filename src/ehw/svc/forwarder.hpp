#pragma once
// svc::Forwarder — the federation front daemon: speaks the mission
// service protocol northbound to clients and southbound (as a plain
// svc::Client) to a set of backend daemons, so a cluster of `mpa serve`
// processes looks like one big service.
//
// Routing reuses the exact PlacementPolicy that PoolGroup uses for
// in-process shards: each backend is a PlacementTarget refreshed by a
// background stats poll, and repeat mission fingerprints are steered to
// the backend whose FitnessMemo / compiled-array cache is already warm
// with their frames and candidates. Placement is a speed decision only —
// every backend computes bit-identical results for the same spec.
//
// Liveness and failover: a backend that misses `down_after` consecutive
// polls is declared down. Its placement affinities are dropped (the warm
// state died with it) and every unfinished mission routed there fails
// over: the forwarder reads the mission's latest checkpoint from the
// backend's journal directory (when configured and visible from this
// host — loopback or shared-filesystem deployments), re-places it among
// the survivors, and resubmits with the protocol's additive "resume"
// field so the mission continues from its last generation boundary
// instead of restarting. No checkpoint → a from-scratch resubmit, still
// bit-identical, just slower. No surviving backend → the route finishes
// "failed" with the reason, served locally.
//
// Watch/result northbound ops survive failover: they track the route's
// incarnation (generation counter) and re-attach southbound when it
// moves, exactly like Server re-attaches watchers across an in-process
// migration.
//
// The forwarder keeps no journal of its own: durability lives in the
// backends. Its route table (front job id -> backend job) is in-memory;
// clients that must survive a forwarder restart key their waits by
// mission NAME (watch_mission / submit_idempotent), which any backend
// resolves from its journal.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ehw/obs/metrics.hpp"
#include "ehw/sched/placement.hpp"
#include "ehw/svc/client.hpp"
#include "ehw/svc/protocol.hpp"
#include "ehw/svc/socket.hpp"

namespace ehw::svc {

struct BackendConfig {
  std::string address = "127.0.0.1";
  std::uint16_t port = 0;
  /// The backend's journal directory AS VISIBLE FROM THIS HOST; "" means
  /// no checkpoint access (failover restarts missions from scratch).
  std::string journal_dir;
};

struct ForwarderConfig {
  /// Northbound bind address/port (0 = ephemeral, see Forwarder::port()).
  std::string address = "127.0.0.1";
  std::uint16_t port = 0;
  std::vector<BackendConfig> backends;
  /// Backend stats-poll cadence (placement freshness + liveness).
  int poll_ms = 250;
  /// Consecutive failed polls before a backend is declared down.
  int down_after = 2;
  /// Socket IO bound for quick southbound ops (submit/status/stats/...).
  /// Blocking ops (result/watch) always run unbounded and rely on the
  /// peer's death resetting the connection.
  int io_timeout_ms = 5000;
  /// Northbound per-session frame-length bound; 0 = LineChannel default.
  std::size_t max_line = 0;
  /// Northbound idle-session bound (ms); 0 = disabled. See ServerConfig.
  int idle_timeout_ms = 0;
};

/// Point-in-time forwarder counters (the "stats" op's cluster.forwarder
/// section).
struct ForwarderStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failovers = 0;
  /// Failovers that carried a checkpoint (vs from-scratch resubmits).
  std::uint64_t failover_resumed = 0;
  /// Split-brain fence cancels issued to reviving backends (missions
  /// that already failed over elsewhere, cancelled by name before the
  /// revived backend's state is trusted again).
  std::uint64_t fences = 0;
  /// Down->up revival edges observed (cold = epoch moved, or warm).
  std::uint64_t rejoins = 0;
  /// Brownout rejections: low-priority submits shed while every backend
  /// was saturated or cold.
  std::uint64_t shed = 0;
  std::size_t routes = 0;
  std::size_t backends_up = 0;
  bool draining = false;
};

class Forwarder {
 public:
  /// Polls every backend once (so the first submit has placement data),
  /// then binds and serves. Throws std::runtime_error when the endpoint
  /// cannot be bound or no backends are configured.
  explicit Forwarder(ForwarderConfig config);
  ~Forwarder();

  Forwarder(const Forwarder&) = delete;
  Forwarder& operator=(const Forwarder&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const ForwarderConfig& config() const noexcept {
    return config_;
  }

  /// Stops accepting new missions here AND fans the drain out to every
  /// reachable backend.
  void drain();

  /// Blocks until a northbound drain arrives and every routed mission is
  /// terminal on its backend — the serve loop of `mpa forward`.
  void wait_drained();

  /// Graceful shutdown: refuse new connections, unblock sessions, join
  /// all threads. Sessions blocked in result/watch follow their backend
  /// mission to completion first (the forwarder never abandons a wait).
  void stop();

  [[nodiscard]] ForwarderStats forwarder_stats() const;

  /// The forwarder's metric registry (its own, never the backends').
  [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }
  /// Prometheus text exposition with per-backend labelled gauges
  /// (up/poll-age/capacity) refreshed at scrape time. Handed to
  /// MetricsHttp by `mpa forward --metrics-port`.
  [[nodiscard]] std::string metrics_text();

  /// Chaos/test hook: treat backend `index` as dead NOW — the same path
  /// a real death takes after `down_after` missed polls (affinity drop +
  /// failover of its routes). A later successful poll resurrects it.
  void mark_backend_down(std::size_t index);

  /// Jittered exponential re-poll delay for a down backend, as a PURE
  /// function of (poll cadence, fault-plan seed, backend, round): delay
  /// doubles per round up to max(poll_ms, 10 s), plus a stateless-hash
  /// jitter in [0, delay/2). Same seed → the exact same revival
  /// schedule, which is what makes seeded chaos runs replayable.
  [[nodiscard]] static std::uint64_t backoff_delay_ns(int poll_ms,
                                                      std::uint64_t seed,
                                                      std::size_t index,
                                                      int round);

 private:
  struct Route {
    std::uint64_t id = 0;  // front id clients see
    sched::MissionSpec spec;
    std::size_t backend = 0;
    std::uint64_t backend_job = 0;
    /// Bumped on every failover; watch/result waiters re-resolve when it
    /// moves past their snapshot. Guarded by state_mutex_.
    std::uint64_t generation = 0;
    std::uint64_t failovers = 0;
    /// Backend epoch the CURRENT incarnation was placed against (0 =
    /// identity unknown at placement time). A revived backend with a
    /// different epoch is a different incarnation of the world; routes
    /// carry the epoch so membership events are attributable. Guarded by
    /// state_mutex_.
    std::uint64_t placed_epoch = 0;
    /// Terminal state recorded HERE (failover dead end) — the backends
    /// no longer own this mission's answer. Guarded by state_mutex_.
    bool finished = false;
    std::string final_status;
    Json final_result;
    /// The optimistic capacity bump for this route was handed back (the
    /// route was seen terminal southbound). Guarded by state_mutex_.
    bool capacity_released = false;
  };
  struct BackendState {
    int failures = 0;
    std::uint64_t polls = 0;
    /// Identity learned from the greeting of each poll connection
    /// (""/0 until the first good poll, or against pre-epoch daemons).
    std::string instance_id;
    std::uint64_t epoch = 0;
    /// Declared down (take_down_locked ran). Distinct from
    /// !target.reachable: a boot-time never-polled backend is
    /// unreachable but not yet *down*.
    bool down = false;
    /// Consecutive failed polls since declared down — exponent of the
    /// jittered re-poll backoff.
    int backoff_round = 0;
    /// Down backends are skipped by the poll loop until this deadline.
    std::uint64_t next_poll_ns = 0;
    /// Tombstoned by `backend remove`: never polled, never placed, kept
    /// so route indices stay stable.
    bool removed = false;
    /// Mission names that failed over OFF this backend while it was
    /// down; cancelled by name on revival (split-brain fence) before
    /// the backend is trusted again.
    std::vector<std::string> fence_names;
    std::uint64_t fences = 0;   // fence cancels issued against it
    std::uint64_t rejoins = 0;  // down->up revival edges
    std::string last_fence;     // human summary of the last revival/fence
    /// Tracer::now_ns() of the last successful poll; 0 = never. Drives
    /// the per-backend poll-age gauge and the health op's `stale` flag
    /// (a backend can be reachable but fed by old data — stale != down).
    std::uint64_t last_good_poll_ns = 0;
    sched::PlacementTarget target;  // reachable=false until a good poll
    Json pool_json;                 // last good poll's "pool" section
    /// Lanes/jobs optimistically placed since the last good poll. Kept
    /// OUTSIDE `target` so a poll resets them wholesale and a route seen
    /// finishing between polls hands its share back immediately — without
    /// either correction fighting the other. Guarded by state_mutex_.
    std::size_t opt_lanes = 0;
    std::size_t opt_jobs = 0;
  };
  struct Session {
    explicit Session(Socket socket)
        : channel(std::make_shared<LineChannel>(std::move(socket))) {}
    std::shared_ptr<LineChannel> channel;
    std::thread thread;
    std::atomic<bool> done{false};
    bool greeted = false;            // session-thread only
    bool close_after_reply = false;  // session-thread only
  };

  void accept_loop();
  void session_loop(Session* session);
  [[nodiscard]] std::optional<Json> handle_request(Session& session,
                                                   const Json& request);
  [[nodiscard]] Json handle_submit(const Json& request);
  [[nodiscard]] Json handle_submit_batch(const Json& request);
  [[nodiscard]] Json handle_status(const Json& request);
  [[nodiscard]] Json handle_result(const Json& request);
  [[nodiscard]] Json handle_cancel(const Json& request);
  [[nodiscard]] Json handle_list();
  [[nodiscard]] Json handle_stats();
  [[nodiscard]] Json handle_health();
  /// Live membership: {"op":"backend","action":"add"|"remove"|"list"}.
  /// add appends a backend and polls it immediately; remove tombstones
  /// (indices are never reused — routes keep their backend index) and
  /// fails the victim's unfinished routes over to the survivors.
  [[nodiscard]] Json handle_backend(const Json& request);
  [[nodiscard]] std::optional<Json> handle_watch(Session& session,
                                                 const Json& request);
  [[nodiscard]] Json handle_drain(const Json& request);
  /// Polls until no route is queued/running on its backend (drain-wait).
  void wait_routes_idle();
  [[nodiscard]] std::shared_ptr<Route> find_route(const Json& request,
                                                  std::string& error) const;

  /// Quick southbound connection (io_timeout-bounded).
  [[nodiscard]] Client quick_client(std::size_t backend) const;
  /// Locked copy of one backend's endpoint config — membership can grow
  /// concurrently, so nothing may hold a reference across a network op.
  [[nodiscard]] BackendConfig backend_config(std::size_t backend) const;

  void poll_loop();
  /// One liveness/stats probe; on the reachable->down edge collects the
  /// backend's unfinished routes and fails them over.
  void poll_backend(std::size_t index);
  /// Caller holds state_mutex_. Flips the backend down, drops its
  /// affinities and returns the routes needing failover.
  [[nodiscard]] std::vector<std::shared_ptr<Route>> take_down_locked(
      std::size_t index);
  /// Re-places one orphaned route (checkpoint read -> resume submit).
  void failover_route(const std::shared_ptr<Route>& route,
                      std::size_t dead_backend);
  /// Terminal local failure for a route no backend can continue.
  void finish_route_failed(const std::shared_ptr<Route>& route,
                           const std::string& error);
  /// Caller holds state_mutex_: the per-backend PlacementTargets with
  /// the optimistic overlay applied (removed backends unreachable).
  [[nodiscard]] std::vector<sched::PlacementTarget> target_snapshot_locked()
      const;
  /// Caller holds state_mutex_: placement over the current target
  /// snapshots, with an optimistic capacity bump on the winner so a
  /// burst of submits between polls spreads out.
  [[nodiscard]] sched::PlacementPolicy::Decision place_locked(
      const sched::MissionSpec& spec);
  /// The public static backoff over this forwarder's poll cadence and
  /// the process fault-plan seed.
  [[nodiscard]] std::uint64_t backoff_delay_ns(std::size_t index,
                                               int round) const;
  /// Caller holds state_mutex_: backpressure hint for a brownout shed,
  /// sized from the poll cadence and the cluster-wide backlog.
  [[nodiscard]] std::uint64_t shed_retry_after_ms_locked() const;
  /// Caller holds state_mutex_. Returns the route's optimistic bump to
  /// its backend the first time the route is observed terminal, so a
  /// repeat submit right after a result doesn't see a stale "full"
  /// snapshot and spill off its warm backend.
  void release_route_locked(Route& route);

  /// Refreshes the per-backend labelled gauges; called by metrics_text().
  void refresh_gauges();

  ForwarderConfig config_;
  std::uint16_t port_ = 0;

  // Telemetry. Declared before every thread that records into it; the
  // counter references REPLACE the old guarded tallies (the wire shape
  // of stats/health is unchanged — the registry is just where the same
  // numbers now live, labelled for the Prometheus endpoint).
  obs::Registry metrics_;
  obs::Counter& m_submitted_ = metrics_.counter("mpa_missions_submitted_total");
  obs::Counter& m_rejected_ = metrics_.counter("mpa_missions_rejected_total");
  obs::Counter& m_failovers_ = metrics_.counter("mpa_failovers_total");
  obs::Counter& m_failover_resumed_ =
      metrics_.counter("mpa_failovers_resumed_total");
  obs::Counter& m_connections_ = metrics_.counter("mpa_connections_total");
  obs::Counter& m_fences_ = metrics_.counter("mpa_fence_cancels_total");
  obs::Counter& m_rejoins_ = metrics_.counter("mpa_backend_rejoins_total");
  obs::Counter& m_shed_ = metrics_.counter("mpa_submits_shed_total");

  mutable std::mutex state_mutex_;
  std::condition_variable state_cv_;
  /// Live membership. Deques, not vectors: `backend add` appends while
  /// sessions hold indices, and deque growth never moves existing
  /// elements. Both guarded by state_mutex_; config_.backends stays the
  /// boot-time snapshot.
  std::deque<BackendConfig> backend_configs_;
  std::deque<BackendState> backends_;
  std::map<std::uint64_t, std::shared_ptr<Route>> routes_;  // by front id
  std::uint64_t next_id_ = 1;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  // stop() ran to completion (main thread only)

  sched::PlacementPolicy placement_;

  std::unique_ptr<Listener> listener_;
  std::thread acceptor_;
  std::thread poller_;
  std::mutex poll_mutex_;
  std::condition_variable poll_cv_;
  mutable std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace ehw::svc
