#include "ehw/svc/metrics_http.hpp"

namespace ehw::svc {

MetricsHttp::MetricsHttp(const std::string& address, std::uint16_t port,
                         std::function<std::string()> producer)
    : listener_(std::make_unique<Listener>(address, port)),
      port_(listener_->port()),
      producer_(std::move(producer)) {
  thread_ = std::thread([this] { loop(); });
}

MetricsHttp::~MetricsHttp() { stop(); }

void MetricsHttp::stop() {
  if (stopping_.exchange(true)) return;
  if (thread_.joinable()) thread_.join();
  listener_->close();
}

void MetricsHttp::loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::optional<Socket> socket = listener_->accept_one(/*timeout_ms=*/100);
    if (!socket.has_value()) continue;
    // Drain whatever request line the scraper sent (best effort — the
    // response is the same for every path) without blocking on a silent
    // peer.
    socket->set_recv_timeout(/*timeout_ms=*/1000);
    socket->set_send_timeout(/*timeout_ms=*/5000);
    char buffer[1024];
    static_cast<void>(socket->recv_some(buffer, sizeof buffer));
    const std::string body = producer_ ? producer_() : std::string();
    const std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    static_cast<void>(socket->send_all(response.data(), response.size()));
  }
}

}  // namespace ehw::svc
