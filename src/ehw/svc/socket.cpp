#include "ehw/svc/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/time.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <stdexcept>
#include <sys/socket.h>
#include <unistd.h>

#include "ehw/common/fault.hpp"

namespace ehw::svc {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("invalid IPv4 address: " + address);
  }
  return addr;
}

}  // namespace

// --- Socket -----------------------------------------------------------------

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

long Socket::recv_some(char* data, std::size_t size) noexcept {
  fault::maybe_stall(fault::Site::kSockReadStall);
  if (fault::should_fire(fault::Site::kSockReadError)) {
    errno = EIO;
    return -1;
  }
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n >= 0) return static_cast<long>(n);
    if (errno != EINTR) return -1;
  }
}

bool Socket::send_all(const char* data, std::size_t size) noexcept {
  fault::maybe_stall(fault::Site::kSockWriteStall);
  if (fault::should_fire(fault::Site::kSockWriteError)) {
    errno = EIO;
    return false;
  }
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::set_send_timeout(int timeout_ms) noexcept {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

void Socket::set_recv_timeout(int timeout_ms) noexcept {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::connect_to(const std::string& address, std::uint16_t port) {
  const sockaddr_in addr = make_addr(address, port);
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) throw_errno("socket");
  // The protocol is small request/response frames; Nagle only adds
  // latency here.
  const int one = 1;
  ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) == 0) {
    return socket;
  }
  if (errno != EINTR) {
    throw_errno("connect to " + address + ":" + std::to_string(port));
  }
  // A connect interrupted by a signal keeps completing asynchronously;
  // re-calling connect() would race it (EALREADY/EISCONN). Wait for
  // writability, then read the real outcome from SO_ERROR.
  for (;;) {
    pollfd pfd{socket.fd(), POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, -1);
    if (ready > 0) break;
    if (ready < 0 && errno == EINTR) continue;
    throw_errno("connect to " + address + ":" + std::to_string(port));
  }
  int soerr = 0;
  socklen_t len = sizeof soerr;
  if (::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &soerr, &len) != 0) {
    throw_errno("connect to " + address + ":" + std::to_string(port));
  }
  if (soerr != 0) {
    errno = soerr;
    throw_errno("connect to " + address + ":" + std::to_string(port));
  }
  return socket;
}

// --- Listener ---------------------------------------------------------------

Listener::Listener(const std::string& address, std::uint16_t port) {
  sockaddr_in addr = make_addr(address, port);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind " + address + ":" + std::to_string(port));
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

std::optional<Socket> Listener::accept_one(int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  pollfd pfd{fd_, POLLIN, 0};
  int ready = ::poll(&pfd, 1, timeout_ms);
  while (ready < 0 && errno == EINTR) ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return std::nullopt;  // timeout, or closed under us
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return std::nullopt;
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(client);
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- LineChannel ------------------------------------------------------------

LineChannel::ReadStatus LineChannel::read_frame(std::string& line) {
  if (fault::should_fire(fault::Site::kOversizeLine)) {
    buffer_.clear();
    return ReadStatus::kOversize;
  }
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return ReadStatus::kLine;
    }
    if (buffer_.size() > max_line_) {
      // Drop the partial frame so a hostile peer can't pin max_line
      // bytes per connection after the error reply.
      buffer_.clear();
      buffer_.shrink_to_fit();
      return ReadStatus::kOversize;
    }
    char chunk[4096];
    const long n = socket_.recv_some(chunk, sizeof chunk);
    if (n == 0) return ReadStatus::kClosed;  // EOF
    if (n < 0) {
      return errno == EAGAIN || errno == EWOULDBLOCK ? ReadStatus::kTimeout
                                                     : ReadStatus::kClosed;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool LineChannel::write_line(const std::string& line) {
  std::lock_guard lock(write_mutex_);
  if (write_failed_) return false;
  std::string frame;
  frame.reserve(line.size() + 1);
  frame += line;
  frame += '\n';
  if (!socket_.send_all(frame.data(), frame.size())) {
    write_failed_ = true;
    return false;
  }
  return true;
}

}  // namespace ehw::svc
