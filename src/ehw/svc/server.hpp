#pragma once
// svc::Server — the mission service daemon: a loopback TCP front-end
// over a sched::PoolGroup (one or more ArrayPools behind a placement
// policy; see pool_group.hpp for why sharding helps a busy daemon).
//
// Threading model: one acceptor thread polls the listener; each
// connection gets a session thread running the request loop. Progress
// events for watched jobs are written from the JOB's thread (via
// MissionRunner::subscribe) through the session's LineChannel, whose
// write lock keeps frames from interleaving with responses.
//
// Admission control: at most `max_inflight` jobs may be submitted but
// not yet finished (queued in the pool counts); beyond that, submits are
// rejected with code "queue_full" so clients get explicit backpressure
// instead of an ever-growing queue. Lane demand is validated against the
// pool before submission.
//
// Drain/shutdown: drain() (or the "drain" op) makes every subsequent
// submit fail with code "draining" while running/queued jobs finish
// normally; wait_drained() blocks until the service is drained and is
// what `mpa serve` sits on. stop() closes the listener and sessions,
// waits for the pool, and joins every thread — it never aborts a running
// job (cancel first for a fast exit).
//
// Results delivered through the service are computed by the exact same
// pool/job-body path as `mpa batch`, so they inherit the scheduler's
// guarantee: bit-identical to a standalone run of the same spec.
//
// Durability (optional, ServerConfig::journal_dir): every admitted job
// is journaled write-ahead ("submitted" before launch, "finished" with
// the full result body after), running jobs checkpoint their evolution
// state every `checkpoint_every` generations, and a restarting daemon
// replays the journal — finished missions are re-served from the log
// without recomputation, unfinished ones are resubmitted and resume
// from their latest checkpoint, landing on bit-identical results.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ehw/obs/metrics.hpp"
#include "ehw/sched/pool_group.hpp"
#include "ehw/svc/journal.hpp"
#include "ehw/svc/protocol.hpp"
#include "ehw/svc/socket.hpp"

namespace ehw::svc {

struct ServerConfig {
  /// Bind address; loopback by default (the service is an operator-local
  /// daemon — remote backends are a future layer).
  std::string address = "127.0.0.1";
  /// 0 = ephemeral; the chosen port is readable via Server::port().
  std::uint16_t port = 0;
  /// The scheduler pool(s) the daemon fronts. Each of `pools` shards is
  /// built from `pool` (per-pool queue, locks, cache + memo); submits are
  /// routed across them by the group's PlacementPolicy (free capacity +
  /// cache locality). One pool reproduces the pre-sharded daemon exactly.
  sched::PoolConfig pool;
  std::size_t pools = 1;
  /// Submitted-but-unfinished job cap; 0 = 2x total arrays.
  std::size_t max_inflight = 0;
  /// Finished-job retention: when the registry exceeds this many
  /// records, the oldest FINISHED jobs are evicted (their ids stop
  /// resolving for status/result). Bounds daemon memory and the `list`
  /// frame over long uptimes; live jobs are never evicted. 0 = keep
  /// everything.
  std::size_t max_job_records = 4096;
  /// Journal directory; empty = no durability (the pre-durable daemon).
  /// When set, the daemon appends a write-ahead job journal there,
  /// checkpoints running missions, and replays everything on startup.
  std::string journal_dir;
  /// Checkpoint cadence for journaled jobs, in generations. 0 disables
  /// checkpointing (recovery then restarts missions from scratch, still
  /// bit-identical — just slower).
  std::uint64_t checkpoint_every = 25;
  /// Persist the FitnessMemo + compiled-array cache to warm.json on
  /// graceful stop and preload them on startup (journaled daemons only).
  bool persist_warm = true;
  /// Per-session frame-length bound; 0 = LineChannel::kMaxLine (1 MiB).
  /// An oversize frame gets a clean "oversize_frame" error and a close —
  /// never unbounded buffering.
  std::size_t max_line = 0;
  /// Close sessions that send no request for this long (ms). Watch
  /// streams are exempt once subscribed (they legitimately go quiet).
  /// 0 disables the bound (library/test default — `mpa serve` arms it).
  int idle_timeout_ms = 0;
};

/// Journal/recovery counters (the "stats" op's journal section). All
/// fixed at replay time except checkpoints/appends, which grow.
struct JournalStats {
  bool enabled = false;
  std::uint64_t replayed_records = 0;  // parseable records read at start
  std::uint64_t replayed_finished = 0;  // missions re-served from the log
  std::uint64_t resumed = 0;            // unfinished missions resubmitted
  std::uint64_t resumed_from_checkpoint = 0;
  std::uint64_t corrupt = 0;  // unparsable interior lines
  bool truncated_tail = false;  // torn final line (crash mid-append)
  std::uint64_t warm_memo_loaded = 0;
  std::uint64_t warm_cache_loaded = 0;
  std::uint64_t checkpoints_written = 0;  // this incarnation
  std::uint64_t appended = 0;             // this incarnation
};

/// Point-in-time service counters (the "stats" op's service section).
struct ServiceStats {
  std::uint64_t connections = 0;  // accepted since start
  std::size_t sessions_open = 0;
  std::size_t inflight = 0;
  std::size_t max_inflight = 0;
  bool draining = false;
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;  // queue_full + draining rejections
  std::uint64_t migrations = 0;  // preempted missions relaunched elsewhere
  /// Membership identity (see Server::instance_id()/epoch()).
  std::string instance_id;
  std::uint64_t epoch = 0;
};

class Server {
 public:
  /// Binds, listens and starts serving. Throws std::runtime_error when
  /// the endpoint cannot be bound.
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }
  /// Membership identity. The instance id is minted once and persisted
  /// in the journal dir (ephemeral for non-durable daemons); the epoch
  /// bumps on every restart of the same instance. A forwarder uses the
  /// pair to tell "restarted, state gone" (epoch moved) from "stalled,
  /// state intact" (same epoch) when a backend revives.
  [[nodiscard]] const std::string& instance_id() const noexcept {
    return instance_id_;
  }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  /// The first (often only) pool — the pre-sharding surface most tests
  /// and tools poke at.
  [[nodiscard]] sched::ArrayPool& pool() noexcept { return group_->pool(0); }
  [[nodiscard]] sched::PoolGroup& group() noexcept { return *group_; }

  /// Stops admitting new jobs (running/queued ones finish normally).
  void drain();
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }
  /// Blocks until drain() was requested (by any path) and every admitted
  /// job has finished.
  void wait_drained();

  /// Graceful shutdown: refuse new connections, unblock sessions, finish
  /// in-flight jobs, join all threads. Idempotent; also run by ~Server.
  void stop();

  [[nodiscard]] ServiceStats service_stats() const;
  [[nodiscard]] JournalStats journal_stats() const;

  /// This daemon's metric registry (counters/gauges/histograms behind
  /// the stats/health ops and the Prometheus endpoint).
  [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }
  /// Prometheus text exposition of the registry; refreshes the
  /// scrape-time gauges (queue depth, steal counts, hit rates, fault
  /// firings) from the pool group first. Handed to MetricsHttp by
  /// `mpa serve --metrics-port`.
  [[nodiscard]] std::string metrics_text();

 private:
  struct JobRecord {
    std::uint64_t id = 0;
    sched::MissionSpec spec;
    /// Tracer::now_ns() at admission; feeds the `age_ms` list field and
    /// the mission wall-time histogram. 0 for journal-replayed records
    /// (their admission predates this process).
    std::uint64_t submitted_ns = 0;
    /// Live execution handle; nullptr for a mission replayed from the
    /// journal as already finished (or failed terminally during a
    /// migration) — then the journal_* fields below are the record of
    /// truth and every handler answers from them. Swapped under
    /// state_mutex_ when a preempted mission migrates to a new slice.
    std::shared_ptr<sched::MissionRunner> runner;
    Json journaled;              // replayed "finished" result body
    std::string journal_status;  // replayed terminal status name
    std::uint64_t journal_waves = 0;
    bool replayed_from_journal = false;
    /// Saved state a resubmitted mission resumes from (loaded from its
    /// job-<id>.ckpt sidecar during replay, or taken from `latest` when
    /// migrating off a quarantined slice).
    std::shared_ptr<const platform::MissionCheckpoint> resume;
    /// Latest generation-boundary checkpoint, held in memory for every
    /// running job (journaled or not) — the state a migration restores.
    /// Guarded by state_mutex_.
    std::shared_ptr<const platform::MissionCheckpoint> latest;
    /// Pool the current incarnation runs on (group placement decision).
    /// Guarded by state_mutex_.
    std::size_t pool_index = 0;
    /// Lease width override for a migrated incarnation (0 = spec.lanes).
    /// An evolve mission preempted off its slice relaunches on
    /// min(spec.lanes, healthy) arrays; the checkpoint's logical lane
    /// count keeps results bit-identical either way.
    std::size_t grant_lanes = 0;
    /// Watch subscriptions, re-attached to each new incarnation's runner
    /// so progress streams survive a migration. Guarded by state_mutex_.
    std::vector<std::function<void(const sched::MissionEvent&)>> watchers;
  };
  struct Session {
    explicit Session(Socket socket)
        : channel(std::make_shared<LineChannel>(std::move(socket))) {}
    /// Shared so watch subscriptions can outlive the session thread (the
    /// channel just starts failing writes once the peer is gone).
    std::shared_ptr<LineChannel> channel;
    std::thread thread;
    std::atomic<bool> done{false};
    bool greeted = false;           // session-thread only
    bool close_after_reply = false;  // session-thread only
  };

  void accept_loop();
  void session_loop(Session* session);
  /// nullopt when the handler already wrote its own frames (watch).
  [[nodiscard]] std::optional<Json> handle_request(Session& session,
                                                   const Json& request);
  [[nodiscard]] Json handle_submit(const Json& request);
  [[nodiscard]] Json handle_submit_batch(const Json& request);
  /// Registers one admitted job: pool submission, record registry,
  /// inflight bookkeeping subscription. Caller already reserved the
  /// inflight slot. Runs OUTSIDE state_mutex_ (see handle_submit).
  void launch_job(const std::shared_ptr<JobRecord>& record);
  [[nodiscard]] Json handle_status(const Json& request);
  [[nodiscard]] Json handle_result(const Json& request);
  [[nodiscard]] Json handle_cancel(const Json& request);
  [[nodiscard]] Json handle_list();
  [[nodiscard]] Json handle_stats();
  [[nodiscard]] Json handle_health();
  [[nodiscard]] Json handle_trace(const Json& request);
  [[nodiscard]] std::optional<Json> handle_watch(Session& session,
                                                 const Json& request);
  [[nodiscard]] Json handle_drain(const Json& request);
  [[nodiscard]] std::shared_ptr<JobRecord> find_job(const Json& request,
                                                    std::string& error) const;
  /// Evicts the oldest finished jobs beyond max_job_records. Caller
  /// holds state_mutex_.
  void prune_finished_locked();
  /// Opens the journal, replays its records (re-registering finished
  /// missions, resubmitting unfinished ones) and preloads warm state.
  /// Runs from the constructor, before the listener exists.
  void replay_journal();
  void journal_submitted(const JobRecord& record);
  /// Relaunches a preempted mission from its latest checkpoint onto the
  /// healthy remainder of the pool (runs on the job thread that just
  /// preempted; inflight_ stays held across the hop). Falls through to
  /// finish_unmigratable when nothing can host the mission.
  void migrate_job(const std::shared_ptr<JobRecord>& record);
  /// Terminal failure for a mission that cannot be migrated: journals a
  /// failed result, releases the inflight slot and makes the journal_*
  /// fields the record of truth (runner = nullptr).
  void finish_unmigratable(const std::shared_ptr<JobRecord>& record,
                           std::uint64_t waves, const std::string& error);

  /// Refreshes the scrape-time gauges from the pool group; called by
  /// metrics_text() and cheap enough for every scrape.
  void refresh_gauges();

  /// Mints/bumps the persistent instance identity (instance.json in the
  /// journal dir; ephemeral otherwise). Constructor-only.
  void mint_identity();
  /// Backpressure hint for a queue_full rejection: expected ms until
  /// `incoming` slots free up, from the observed mission wall-time
  /// distribution and current queue depth. Caller holds state_mutex_.
  [[nodiscard]] std::uint64_t retry_after_ms_locked(
      std::size_t incoming) const;

  ServerConfig config_;
  std::size_t max_inflight_ = 0;
  std::uint16_t port_ = 0;
  std::string instance_id_;   // constructor-written, then immutable
  std::uint64_t epoch_ = 1;   // constructor-written, then immutable

  // Telemetry. Declared first so every later member — including job
  // threads holding counter references through the checkpoint sink — is
  // destroyed before the registry. The references below REPLACE the old
  // hand-rolled stat members; service_stats()/handle_stats() read them,
  // so the wire shape is unchanged while the same numbers feed the
  // Prometheus endpoint for free.
  obs::Registry metrics_;
  obs::Counter& m_submitted_ = metrics_.counter("mpa_missions_submitted_total");
  obs::Counter& m_rejected_ = metrics_.counter("mpa_missions_rejected_total");
  obs::Counter& m_connections_ = metrics_.counter("mpa_connections_total");
  obs::Counter& m_migrations_ = metrics_.counter("mpa_migrations_total");
  obs::Counter& m_checkpoints_written_ =
      metrics_.counter("mpa_checkpoints_written_total");
  obs::Gauge& m_inflight_ = metrics_.gauge("mpa_inflight_missions");
  obs::Histogram& m_submit_latency_ =
      metrics_.histogram("mpa_submit_ack_latency_ns");
  obs::Histogram& m_mission_wall_ =
      metrics_.histogram("mpa_mission_wall_time_ns");
  obs::Histogram& m_mission_sim_ =
      metrics_.histogram("mpa_mission_sim_time_ns");

  // Durability. The journal is written from job threads (finished
  // records) until group_ is destroyed, so it is declared before group_
  // to be destroyed after it.
  std::unique_ptr<MissionJournal> journal_;
  std::uint64_t replayed_records_ = 0;  // replay-time constants
  std::uint64_t replayed_finished_ = 0;
  std::uint64_t resumed_ = 0;
  std::uint64_t resumed_from_checkpoint_ = 0;
  std::uint64_t journal_corrupt_ = 0;
  bool journal_truncated_tail_ = false;
  std::uint64_t warm_memo_loaded_ = 0;
  std::uint64_t warm_cache_loaded_ = 0;

  // Service state. Declared before the pool/listener/threads so it is
  // destroyed last (job-finished callbacks lock state_mutex_).
  mutable std::mutex state_mutex_;
  std::condition_variable state_cv_;
  std::map<std::uint64_t, std::shared_ptr<JobRecord>> jobs_;  // by id
  std::uint64_t next_job_id_ = 1;
  /// Submitted, not yet finished. Stays a plain guarded integer (the
  /// admission comparisons need a consistent read under state_mutex_);
  /// m_inflight_ mirrors it for the scrape path.
  std::size_t inflight_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  // stop() ran to completion (main thread only)

  std::unique_ptr<sched::PoolGroup> group_;
  std::unique_ptr<Listener> listener_;
  std::thread acceptor_;
  mutable std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace ehw::svc
