#include "ehw/svc/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "ehw/common/fault.hpp"
#include "ehw/common/persist.hpp"
#include "ehw/obs/trace.hpp"

namespace ehw::svc {

namespace {

std::string journal_file(const std::string& dir) {
  return dir + "/journal.jsonl";
}

}  // namespace

MissionJournal::MissionJournal(std::string dir) : dir_(std::move(dir)) {
  if (std::string err = ensure_directory(dir_); !err.empty()) {
    throw std::runtime_error("journal dir: " + err);
  }
  const std::string path = journal_file(dir_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("journal open " + path + ": " +
                             std::strerror(errno));
  }
}

MissionJournal::~MissionJournal() {
  if (fd_ >= 0) ::close(fd_);
}

bool MissionJournal::append(const Json& record) {
  const std::string line = record.dump() + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return false;
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (fault::should_fire(fault::Site::kJournalFsync)) return false;
  EHW_TRACE_SPAN("journal_fsync");
  if (::fsync(fd_) != 0) return false;
  ++appended_;
  return true;
}

std::uint64_t MissionJournal::appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

std::string MissionJournal::checkpoint_path(std::uint64_t job_id) const {
  return checkpoint_path_in(dir_, job_id);
}

std::string MissionJournal::checkpoint_path_in(const std::string& dir,
                                               std::uint64_t job_id) {
  char name[32];
  std::snprintf(name, sizeof(name), "/job-%llu.ckpt",
                static_cast<unsigned long long>(job_id));
  return dir + name;
}

std::string MissionJournal::warm_path() const { return dir_ + "/warm.json"; }

MissionJournal::Replay MissionJournal::replay(const std::string& dir) {
  Replay out;
  std::string text;
  if (std::string err = read_file_text(journal_file(dir), text); !err.empty()) {
    return out;  // fresh journal
  }
  std::istringstream lines(text);
  std::string line;
  std::size_t last_bad_index = 0;
  bool last_was_bad = false;
  std::size_t nonempty = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++nonempty;
    try {
      Json record = Json::parse(line);
      out.records.push_back(std::move(record));
      last_was_bad = false;
    } catch (const JsonError&) {
      ++out.corrupt;
      last_was_bad = true;
      last_bad_index = nonempty;
    }
  }
  // A torn final line is the expected wound of a kill -9 mid-append;
  // distinguish it from interior corruption so callers can report it.
  if (last_was_bad && last_bad_index == nonempty && out.corrupt > 0) {
    out.truncated_tail = true;
    --out.corrupt;
  }
  return out;
}

}  // namespace ehw::svc
