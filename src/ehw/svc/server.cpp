#include "ehw/svc/server.hpp"

#include <unistd.h>

#include <algorithm>
#include <map>
#include <random>

#include "ehw/common/fault.hpp"
#include "ehw/common/persist.hpp"
#include "ehw/common/rng.hpp"
#include "ehw/common/version.hpp"
#include "ehw/obs/trace.hpp"
#include "ehw/sched/checkpoint_store.hpp"

namespace ehw::svc {
namespace {

Json greeting_frame(const std::string& instance_id, std::uint64_t epoch) {
  Json frame = Json::object();
  frame.set("event", "hello");
  frame.set("service", kServiceName);
  frame.set("protocol", kProtocolVersion);
  frame.set("version", kVersion);
  frame.set("instance_id", instance_id);
  frame.set("epoch", epoch);
  return frame;
}

/// One pool-counters object (the "pool" aggregate and each "pools" row
/// share the shape).
Json pool_stats_json(const sched::ArrayPool::PoolStats& stats) {
  Json pool = Json::object();
  pool.set("arrays", static_cast<std::uint64_t>(stats.num_arrays));
  pool.set("free_arrays", static_cast<std::uint64_t>(stats.free_arrays));
  pool.set("running", static_cast<std::uint64_t>(stats.running));
  pool.set("queued", static_cast<std::uint64_t>(stats.queued));
  pool.set("submitted", stats.submitted);
  pool.set("done", stats.done);
  pool.set("failed", stats.failed);
  pool.set("cancelled", stats.cancelled);
  pool.set("quarantined", static_cast<std::uint64_t>(stats.quarantined));
  pool.set("healthy", static_cast<std::uint64_t>(stats.healthy()));
  pool.set("preempted", stats.preempted);
  pool.set("deadline_expired", stats.deadline_expired);
  return pool;
}

/// Exact non-negative integer out of a record field, or nullopt.
std::optional<std::uint64_t> record_id(const Json& record, const char* key) {
  const Json* field = record.get(key);
  if (field == nullptr || !field->is_number()) return std::nullopt;
  const double value = field->as_number();
  if (!json_number_is_exact_int(value) || value < 0) return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

}  // namespace

Server::Server(ServerConfig config) : config_(std::move(config)) {
  if (config_.pools == 0) config_.pools = 1;
  max_inflight_ = config_.max_inflight != 0
                      ? config_.max_inflight
                      : 2 * config_.pools * config_.pool.num_arrays;
  sched::PoolGroupConfig group_config;
  group_config.pools = config_.pools;
  group_config.pool = config_.pool;
  group_ = std::make_unique<sched::PoolGroup>(group_config);
  // Identity first: the greeting/stats of the fresh incarnation must
  // already carry the bumped epoch when the first client connects.
  mint_identity();
  // Replay before the listener exists: clients connecting to the fresh
  // incarnation already see every surviving job, and resumed missions
  // are back in flight before the first new submit competes for lanes.
  replay_journal();
  listener_ = std::make_unique<Listener>(config_.address, config_.port);
  port_ = listener_->port();
  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::mint_identity() {
  // Fresh identity by default (non-durable daemons ARE new instances on
  // every start — there is no state a peer could mistake for current).
  std::uint64_t entropy = 0;
  try {
    std::random_device rd;
    entropy = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  } catch (...) {
    // A throwing random_device leaves the time/pid mix below.
  }
  entropy = hash_mix(entropy, obs::Tracer::now_ns(),
                     static_cast<std::uint64_t>(::getpid()));
  instance_id_ = hash_hex(entropy);
  epoch_ = 1;
  if (config_.journal_dir.empty()) return;
  static_cast<void>(ensure_directory(config_.journal_dir));
  const std::string path = config_.journal_dir + "/instance.json";
  std::string text;
  if (read_file_text(path, text).empty()) {
    try {
      const Json doc = Json::parse(text);
      const std::string stored = doc.get_string("instance_id", "");
      const double stored_epoch = doc.get_number("epoch", 0);
      if (!stored.empty() && stored_epoch >= 1 &&
          json_number_is_exact_int(stored_epoch)) {
        instance_id_ = stored;
        epoch_ = static_cast<std::uint64_t>(stored_epoch) + 1;
      }
    } catch (const JsonError&) {
      // Corrupt identity sidecar: keep the fresh identity — peers see a
      // brand-new backend, which is the safe direction (cold rejoin).
    }
  }
  Json doc = Json::object();
  doc.set("instance_id", instance_id_);
  doc.set("epoch", epoch_);
  static_cast<void>(atomic_write_file(path, doc.dump() + "\n"));
}

std::uint64_t Server::retry_after_ms_locked(std::size_t incoming) const {
  // Expected wait until `incoming` slots free: the backlog that must
  // terminate first, drained at the pool's parallelism, each taking
  // about the observed median mission wall time. A cold daemon (no
  // completed mission yet) hints a flat 100 ms probe.
  const obs::Histogram::Snapshot wall = m_mission_wall_.snapshot();
  const double per_mission_ms =
      wall.count > 0 ? wall.quantile(0.50) / 1e6 : 100.0;
  const double parallel = static_cast<double>(
      std::max<std::size_t>(1, config_.pools * config_.pool.num_arrays));
  const double backlog = static_cast<double>(inflight_) +
                         static_cast<double>(incoming) -
                         static_cast<double>(max_inflight_) + 1.0;
  const double hint = per_mission_ms * std::max(1.0, backlog / parallel);
  return static_cast<std::uint64_t>(std::clamp(hint, 25.0, 60000.0));
}

void Server::replay_journal() {
  if (config_.journal_dir.empty()) return;
  const MissionJournal::Replay replay =
      MissionJournal::replay(config_.journal_dir);
  journal_ = std::make_unique<MissionJournal>(config_.journal_dir);
  replayed_records_ = replay.records.size();
  journal_corrupt_ = replay.corrupt;
  journal_truncated_tail_ = replay.truncated_tail;

  // Warm state first, so resumed missions hit the warmed memo/cache.
  if (config_.persist_warm) {
    std::string text;
    if (read_file_text(journal_->warm_path(), text).empty()) {
      try {
        const sched::ArrayPool::WarmLoadStats warm =
            group_->import_warm_state(Json::parse(text));
        warm_memo_loaded_ = warm.memo_loaded;
        warm_cache_loaded_ = warm.cache_loaded;
      } catch (const JsonError&) {
        // A corrupt warm file costs only recomputation, never recovery.
      }
    }
  }

  // Fold the record stream into per-job final states. "submitted" is the
  // write-ahead anchor: a job with no "finished" record is resubmitted
  // whether or not it ever "started" (the crash may have landed between
  // the ack and the launch).
  struct ReplayedJob {
    sched::MissionSpec spec;
    bool have_spec = false;
    bool finished = false;
    std::string status;
    std::uint64_t waves = 0;
    Json result;
  };
  std::map<std::uint64_t, ReplayedJob> by_id;
  for (const Json& record : replay.records) {
    const std::string rec = record.get_string("rec", "");
    const std::optional<std::uint64_t> id = record_id(record, "job");
    if (!id.has_value()) {
      ++journal_corrupt_;
      continue;
    }
    ReplayedJob& job = by_id[*id];
    if (rec == "submitted") {
      const Json* spec_field = record.get("spec");
      if (spec_field == nullptr ||
          !spec_from_json(*spec_field, job.spec).empty()) {
        ++journal_corrupt_;
        by_id.erase(*id);
        continue;
      }
      job.have_spec = true;
    } else if (rec == "started") {
      // Informational; resubmission keys off "finished" alone.
    } else if (rec == "finished") {
      job.finished = true;
      job.status = record.get_string("status", "failed");
      job.waves = record_id(record, "waves").value_or(0);
      if (const Json* result = record.get("result")) job.result = *result;
    } else {
      ++journal_corrupt_;
    }
  }
  if (!by_id.empty()) next_job_id_ = by_id.rbegin()->first + 1;

  for (auto& [id, job] : by_id) {
    if (!job.have_spec) {
      // A finished/started orphan (its submitted record was the torn
      // line). Nothing actionable without a spec.
      ++journal_corrupt_;
      continue;
    }
    auto record = std::make_shared<JobRecord>();
    record->id = id;
    record->spec = job.spec;
    if (job.finished) {
      record->journaled = std::move(job.result);
      record->journal_status =
          job.status.empty() ? std::string("failed") : job.status;
      record->journal_waves = job.waves;
      record->replayed_from_journal = true;
      ++replayed_finished_;
      std::lock_guard lock(state_mutex_);
      jobs_.emplace(id, std::move(record));
      continue;
    }
    // Unfinished across the crash: lane demand is re-validated against
    // THIS pool layout (a restart may have shrunk it). Lanes are capped
    // per pool — a lease never spans pools.
    if (record->spec.lanes > group_->arrays_per_pool()) {
      Json body = Json::object();
      body.set("status", status_name(sched::JobStatus::kFailed));
      body.set("error",
               "recovery: lanes=" + std::to_string(record->spec.lanes) +
                   " exceeds the pool's " +
                   std::to_string(group_->arrays_per_pool()) + " arrays");
      Json rec = Json::object();
      rec.set("rec", "finished");
      rec.set("job", id);
      rec.set("status", status_name(sched::JobStatus::kFailed));
      rec.set("waves", static_cast<std::uint64_t>(0));
      rec.set("result", body);
      static_cast<void>(journal_->append(rec));
      record->journaled = std::move(body);
      record->journal_status = status_name(sched::JobStatus::kFailed);
      record->replayed_from_journal = true;
      ++replayed_finished_;
      std::lock_guard lock(state_mutex_);
      jobs_.emplace(id, std::move(record));
      continue;
    }
    const std::string ckpt_path = journal_->checkpoint_path(id);
    if (file_exists(ckpt_path)) {
      sched::MissionSpec saved_spec;
      auto checkpoint = std::make_shared<platform::MissionCheckpoint>();
      if (sched::load_mission_checkpoint(ckpt_path, saved_spec, *checkpoint)
              .empty()) {
        record->resume = std::move(checkpoint);
        ++resumed_from_checkpoint_;
      }
      // A bad checkpoint file is dropped: a from-scratch rerun is still
      // bit-identical, just slower.
    }
    {
      std::lock_guard lock(state_mutex_);
      // Recovery may momentarily exceed max_inflight_: work admitted
      // before the crash takes precedence over fresh submissions.
      ++inflight_;
      m_inflight_.set(static_cast<double>(inflight_));
    }
    m_submitted_.add();
    ++resumed_;
    record->submitted_ns = obs::Tracer::now_ns();
    launch_job(record);
  }
}

void Server::journal_submitted(const JobRecord& record) {
  if (journal_ == nullptr) return;
  Json rec = Json::object();
  rec.set("rec", "submitted");
  rec.set("v", static_cast<std::uint64_t>(1));
  rec.set("job", record.id);
  rec.set("spec", spec_to_json(record.spec));
  static_cast<void>(journal_->append(rec));
}

void Server::drain() {
  {
    std::lock_guard lock(state_mutex_);
    draining_.store(true, std::memory_order_relaxed);
  }
  state_cv_.notify_all();
}

void Server::wait_drained() {
  std::unique_lock lock(state_mutex_);
  state_cv_.wait(lock, [this] {
    return draining_.load(std::memory_order_relaxed) && inflight_ == 0;
  });
}

void Server::stop() {
  if (stopped_) return;
  stopping_.store(true, std::memory_order_relaxed);
  // The acceptor polls with a short timeout and re-checks stopping_, so
  // join it FIRST and only then close the listener fd — closing while
  // the acceptor is inside poll/accept would race on the descriptor.
  if (acceptor_.joinable()) acceptor_.join();
  if (listener_ != nullptr) listener_->close();
  // Take the sessions out under the lock but JOIN them outside it: a
  // session thread may be inside the "stats" handler, which locks
  // sessions_mutex_ via service_stats() — joining while holding it
  // would deadlock. The acceptor is already joined, so nothing else
  // appends to sessions_.
  std::vector<std::unique_ptr<Session>> to_join;
  {
    std::lock_guard lock(sessions_mutex_);
    to_join.swap(sessions_);
  }
  for (const auto& session : to_join) session->channel->shutdown();
  // Let in-flight jobs finish first: sessions blocked in a "result" op
  // only unblock when their job does.
  group_->wait_all();
  for (const auto& session : to_join) {
    if (session->thread.joinable()) session->thread.join();
  }
  // A session may have submitted between the first wait and its join.
  group_->wait_all();
  // Durable daemons snapshot memo + cache recipes on the way out; the
  // next incarnation preloads them (pure optimization, loss is benign).
  if (journal_ != nullptr && config_.persist_warm) {
    static_cast<void>(atomic_write_file(
        journal_->warm_path(), group_->export_warm_state().dump() + "\n"));
  }
  stopped_ = true;
}

ServiceStats Server::service_stats() const {
  ServiceStats stats;
  {
    std::lock_guard lock(sessions_mutex_);
    for (const auto& session : sessions_) {
      if (!session->done.load(std::memory_order_relaxed)) {
        ++stats.sessions_open;
      }
    }
  }
  {
    std::lock_guard lock(state_mutex_);
    stats.inflight = inflight_;
  }
  // Counters are registry-backed (relaxed atomics): same numbers the
  // Prometheus endpoint scrapes, same wire shape as before.
  stats.connections = m_connections_.value();
  stats.max_inflight = max_inflight_;
  stats.draining = draining_.load(std::memory_order_relaxed);
  stats.submitted = m_submitted_.value();
  stats.rejected = m_rejected_.value();
  stats.migrations = m_migrations_.value();
  stats.instance_id = instance_id_;
  stats.epoch = epoch_;
  return stats;
}

JournalStats Server::journal_stats() const {
  JournalStats stats;
  if (journal_ == nullptr) return stats;
  // Replay-time fields are constants after the constructor; only the
  // counters below move.
  stats.enabled = true;
  stats.replayed_records = replayed_records_;
  stats.replayed_finished = replayed_finished_;
  stats.resumed = resumed_;
  stats.resumed_from_checkpoint = resumed_from_checkpoint_;
  stats.corrupt = journal_corrupt_;
  stats.truncated_tail = journal_truncated_tail_;
  stats.warm_memo_loaded = warm_memo_loaded_;
  stats.warm_cache_loaded = warm_cache_loaded_;
  stats.checkpoints_written = m_checkpoints_written_.value();
  stats.appended = journal_->appended();
  return stats;
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::optional<Socket> socket = listener_->accept_one(/*timeout_ms=*/100);
    if (!socket.has_value()) continue;
    // A client that stops reading must not wedge the job thread writing
    // its progress events (or a session reply) forever: bound the stall,
    // then the channel poisons itself and the subscription goes quiet.
    socket->set_send_timeout(/*timeout_ms=*/10000);
    auto session = std::make_unique<Session>(std::move(*socket));
    Session* raw = session.get();
    {
      std::lock_guard lock(sessions_mutex_);
      // Reap sessions whose threads already finished.
      auto alive = sessions_.begin();
      for (auto& existing : sessions_) {
        if (existing->done.load(std::memory_order_acquire) &&
            existing->thread.joinable()) {
          existing->thread.join();
          continue;
        }
        *alive++ = std::move(existing);
      }
      sessions_.erase(alive, sessions_.end());
      sessions_.push_back(std::move(session));
    }
    m_connections_.add();
    raw->thread = std::thread([this, raw] { session_loop(raw); });
  }
}

void Server::session_loop(Session* session) {
  LineChannel& channel = *session->channel;
  channel.set_max_line(config_.max_line);
  if (config_.idle_timeout_ms > 0) {
    channel.set_recv_timeout(config_.idle_timeout_ms);
  }
  if (channel.write_line(greeting_frame(instance_id_, epoch_).dump())) {
    std::string line;
    for (;;) {
      const LineChannel::ReadStatus read = channel.read_frame(line);
      if (read == LineChannel::ReadStatus::kOversize) {
        // Clean protocol error, then close: framing is unrecoverable
        // past a frame that never ended (and the buffer was dropped, so
        // memory stayed bounded).
        const Json response = make_error(
            "frame exceeds the " + std::to_string(channel.max_line()) +
                " byte line limit",
            "oversize_frame");
        static_cast<void>(channel.write_line(response.dump()));
        break;
      }
      if (read == LineChannel::ReadStatus::kTimeout) {
        const Json response = make_error(
            "idle timeout: no request within " +
                std::to_string(config_.idle_timeout_ms) + " ms",
            "idle_timeout");
        static_cast<void>(channel.write_line(response.dump()));
        break;
      }
      if (read != LineChannel::ReadStatus::kLine) break;  // closed
      Json request;
      try {
        request = Json::parse(line);
        if (!request.is_object()) {
          throw JsonError("request must be a JSON object", 0);
        }
      } catch (const JsonError& e) {
        const Json response = make_error(
            std::string("malformed request: ") + e.what(), "bad_request");
        if (!channel.write_line(response.dump())) break;
        continue;
      }
      std::optional<Json> response = handle_request(*session, request);
      if (response.has_value()) {
        if (const Json* id = request.get("id")) response->set("id", *id);
        if (!channel.write_line(response->dump())) break;
      }
      if (session->close_after_reply) break;
    }
  }
  channel.shutdown();
  session->done.store(true, std::memory_order_release);
}

std::optional<Json> Server::handle_request(Session& session,
                                           const Json& request) {
  const Json* op_field = request.get("op");
  if (op_field == nullptr || !op_field->is_string()) {
    return make_error("request is missing string member 'op'", "bad_request");
  }
  const std::string& op = op_field->as_string();
  if (op == "hello") {
    const double protocol = request.get_number("protocol", -1);
    if (protocol != static_cast<double>(kProtocolVersion)) {
      session.close_after_reply = true;
      return make_error("unsupported protocol version (server speaks " +
                            std::to_string(kProtocolVersion) + ")",
                        "unsupported_protocol");
    }
    session.greeted = true;
    Json response = make_ok();
    response.set("service", kServiceName);
    response.set("protocol", kProtocolVersion);
    response.set("version", kVersion);
    response.set("instance_id", instance_id_);
    response.set("epoch", epoch_);
    return response;
  }
  if (!session.greeted) {
    return make_error("handshake required: send {\"op\":\"hello\","
                      "\"protocol\":" +
                          std::to_string(kProtocolVersion) + "} first",
                      "bad_request");
  }
  if (op == "submit") return handle_submit(request);
  if (op == "submit_batch") return handle_submit_batch(request);
  if (op == "status") return handle_status(request);
  if (op == "result") return handle_result(request);
  if (op == "cancel") return handle_cancel(request);
  if (op == "list") return handle_list();
  if (op == "stats") return handle_stats();
  if (op == "health") return handle_health();
  if (op == "watch") return handle_watch(session, request);
  if (op == "drain") return handle_drain(request);
  if (op == "trace") return handle_trace(request);
  return make_error("unknown op '" + op + "'", "bad_request");
}

Json Server::handle_submit(const Json& request) {
  EHW_TRACE_SPAN("submit");
  const std::uint64_t admit_start_ns = obs::Tracer::now_ns();
  const Json* spec_field = request.get("spec");
  if (spec_field == nullptr) {
    return make_error("submit needs a 'spec' object", "bad_request");
  }
  sched::MissionSpec spec;
  const std::string spec_error = spec_from_json(*spec_field, spec);
  if (!spec_error.empty()) return make_error(spec_error, "bad_spec");
  if (spec.lanes > group_->arrays_per_pool()) {
    return make_error("lanes=" + std::to_string(spec.lanes) +
                          " exceeds the pool's " +
                          std::to_string(group_->arrays_per_pool()) +
                          " arrays",
                      "bad_spec");
  }
  // Optional resume state (protocol v1, additive): a checkpoint emitted
  // by a previous incarnation of this mission — how the forwarder fails
  // a half-run mission over to a surviving backend without losing its
  // generations. Malformed state rejects the submit; silently starting
  // from scratch would hide the data loss.
  std::shared_ptr<platform::MissionCheckpoint> resume;
  if (const Json* resume_field = request.get("resume")) {
    resume = std::make_shared<platform::MissionCheckpoint>();
    const std::string resume_error =
        platform::mission_checkpoint_from_json(*resume_field, *resume);
    if (!resume_error.empty()) {
      return make_error("bad resume checkpoint: " + resume_error,
                        "bad_request");
    }
  }
  auto record = std::make_shared<JobRecord>();
  record->spec = spec;
  record->resume = std::move(resume);
  {
    std::lock_guard lock(state_mutex_);
    if (draining_.load(std::memory_order_relaxed)) {
      m_rejected_.add();
      return make_error("service is draining; not accepting new missions",
                        "draining");
    }
    if (inflight_ >= max_inflight_) {
      m_rejected_.add();
      Json response = make_error(
          "rejected: " + std::to_string(inflight_) +
              " missions in flight (cap " + std::to_string(max_inflight_) +
              ")",
          "queue_full");
      response.set("rejected", "queue_full");
      response.set("retry_after_ms", retry_after_ms_locked(1));
      return response;
    }
    ++inflight_;
    m_inflight_.set(static_cast<double>(inflight_));
    record->id = next_job_id_++;
  }
  m_submitted_.add();
  record->submitted_ns = admit_start_ns;
  // Write-ahead: the "submitted" record lands before the launch (and
  // before the ack), so a crash anywhere after this line still
  // resubmits the mission on restart.
  journal_submitted(*record);
  launch_job(record);
  Json response = make_ok();
  response.set("job", record->id);
  response.set("name", spec.name);
  // Admission-to-ack latency: spec validation + write-ahead journal +
  // pool placement. The ack write itself is the session loop's.
  m_submit_latency_.record(obs::Tracer::now_ns() - admit_start_ns);
  return response;
}

void Server::launch_job(const std::shared_ptr<JobRecord>& record) {
  if (journal_ != nullptr) {
    Json rec = Json::object();
    rec.set("rec", "started");
    rec.set("job", record->id);
    static_cast<void>(journal_->append(rec));
  }
  // Every job checkpoints through a sink that keeps its latest boundary
  // state in memory — that state is what a lane-quarantine migration
  // restores, journal or not. Journaled daemons additionally persist to
  // the per-job sidecar (atomic replace, latest wins) on the configured
  // cadence and resume from any state recovered at replay.
  sched::MissionCheckpointing checkpointing;
  checkpointing.resume = record->resume;
  std::string sidecar;
  if (journal_ != nullptr && config_.checkpoint_every != 0) {
    checkpointing.every = config_.checkpoint_every;
    sidecar = journal_->checkpoint_path(record->id);
  }
  {
    const sched::MissionSpec spec = record->spec;
    obs::Counter* written = &m_checkpoints_written_;
    checkpointing.sink = [this, record, spec, sidecar,
                          written](const platform::MissionCheckpoint& state) {
      auto holder = std::make_shared<platform::MissionCheckpoint>(state);
      {
        std::lock_guard lock(state_mutex_);
        record->latest = std::move(holder);
      }
      if (!sidecar.empty()) {
        EHW_TRACE_SPAN("checkpoint_write");
        if (sched::save_mission_checkpoint(sidecar, spec, state).empty()) {
          written->add();
        }
      }
    };
  }
  sched::JobConfig config = sched::make_job_config(record->spec);
  if (record->grant_lanes != 0) config.lanes = record->grant_lanes;
  // Pool submission happens OUTSIDE state_mutex_: admit_locked's
  // dispatch-failure path synchronously fires a queued job's kFinished
  // observer, which locks state_mutex_ on this thread. The group places
  // the job by the spec's fingerprint (capacity + cache locality).
  const sched::PoolGroup::Placed placed = group_->submit(
      record->spec, config, sched::make_job_body(record->spec, checkpointing));
  const std::shared_ptr<sched::MissionRunner> runner = placed.runner;
  std::vector<std::function<void(const sched::MissionEvent&)>> watchers;
  {
    std::lock_guard lock(state_mutex_);
    record->runner = runner;
    record->pool_index = placed.pool;
    jobs_.emplace(record->id, record);
    prune_finished_locked();
    watchers = record->watchers;
  }
  // Result waiters poll record->runner; a migration just swapped it.
  state_cv_.notify_all();
  // The pool's own record of finished jobs (body closure, outcome
  // reference) is redundant once the service holds the runner — reap it
  // so daemon memory stays bounded over long uptimes.
  static_cast<void>(group_->reap_finished());
  // Also outside state_mutex_: an already-finished job fires the
  // callback immediately on THIS thread.
  runner->subscribe([this, record, runner](const sched::MissionEvent& event) {
    if (event.kind != sched::MissionEvent::Kind::kFinished) return;
    if (event.status == sched::JobStatus::kPreempted) {
      // The slice is being pulled out from under the mission (lane
      // quarantine): hop to a healthy slice instead of finishing. The
      // inflight slot stays held across the hop.
      migrate_job(record);
      return;
    }
    if (journal_ != nullptr) {
      // Safe here: MissionRunner::finish stores the outcome before it
      // fires kFinished observers. This append is the commit point —
      // after it, replay re-serves the result instead of re-running.
      const sched::JobOutcome& outcome = runner->result();
      Json rec = Json::object();
      rec.set("rec", "finished");
      rec.set("job", record->id);
      rec.set("status", status_name(event.status));
      rec.set("waves", event.waves);
      rec.set("result",
              outcome_to_json(record->spec.kind, event.status, outcome));
      static_cast<void>(journal_->append(rec));
      static_cast<void>(remove_file(journal_->checkpoint_path(record->id)));
    }
    // Wall time covers admission to terminal finish (across migrations:
    // the stamp survives relaunches); sim time is the mission's own
    // platform makespan. Safe to read here — finish() stored it already.
    if (record->submitted_ns != 0) {
      m_mission_wall_.record(obs::Tracer::now_ns() - record->submitted_ns);
    }
    m_mission_sim_.record(runner->sim_duration());
    {
      std::lock_guard lock(state_mutex_);
      --inflight_;
      m_inflight_.set(static_cast<double>(inflight_));
    }
    state_cv_.notify_all();
  });
  // Watch streams survive migrations: re-attach them to this incarnation.
  for (const auto& watcher : watchers) runner->subscribe(watcher);
}

void Server::migrate_job(const std::shared_ptr<JobRecord>& record) {
  std::shared_ptr<const platform::MissionCheckpoint> resume;
  std::uint64_t waves = 0;
  {
    std::lock_guard lock(state_mutex_);
    resume = record->latest;
    if (record->runner != nullptr) waves = record->runner->waves_completed();
  }
  // A migration may land on ANY pool with room — the relaunch goes back
  // through group placement, so size the grant by the best single pool.
  const std::size_t healthy = group_->max_healthy_arrays();
  std::string error;
  if (resume == nullptr) {
    // Preempted before any generation boundary emitted state — nothing
    // to restore (the driver emits a final checkpoint through the sink
    // whenever it honors a preempt, so this is the zero-progress case).
    error = "preempted with no checkpoint to migrate from";
  } else if (healthy == 0) {
    error = "no healthy arrays left";
  } else if (record->spec.kind == sched::MissionKind::kCascade &&
             record->spec.lanes > healthy) {
    // A cascade's width IS its structure (one array per chain stage):
    // it only migrates onto an equally wide healthy slice.
    error = "cascade needs " + std::to_string(record->spec.lanes) +
            " stages but only " + std::to_string(healthy) +
            " arrays are healthy";
  }
  if (!error.empty()) {
    finish_unmigratable(record, waves, error);
    return;
  }
  {
    std::lock_guard lock(state_mutex_);
    record->resume = resume;
    // Evolve missions shrink onto whatever is left (the checkpoint's
    // logical lane count keeps fitness/genotype bit-identical; wider
    // grants than the logical width would idle, so cap at spec.lanes).
    record->grant_lanes = std::min(record->spec.lanes, healthy);
  }
  m_migrations_.add();
  launch_job(record);
}

void Server::finish_unmigratable(const std::shared_ptr<JobRecord>& record,
                                 std::uint64_t waves,
                                 const std::string& error) {
  Json body = Json::object();
  body.set("status", status_name(sched::JobStatus::kFailed));
  body.set("error", "migration failed: " + error);
  if (journal_ != nullptr) {
    Json rec = Json::object();
    rec.set("rec", "finished");
    rec.set("job", record->id);
    rec.set("status", status_name(sched::JobStatus::kFailed));
    rec.set("waves", waves);
    rec.set("result", body);
    static_cast<void>(journal_->append(rec));
    static_cast<void>(remove_file(journal_->checkpoint_path(record->id)));
  }
  std::vector<std::function<void(const sched::MissionEvent&)>> watchers;
  {
    std::lock_guard lock(state_mutex_);
    record->journaled = body;
    record->journal_status = status_name(sched::JobStatus::kFailed);
    record->journal_waves = waves;
    record->runner = nullptr;  // journal_* fields are now the truth
    watchers = record->watchers;
    --inflight_;
    m_inflight_.set(static_cast<double>(inflight_));
  }
  state_cv_.notify_all();
  // Watchers saw the kPreempted finish suppressed (migration pending);
  // deliver the actual terminal event.
  sched::MissionEvent done;
  done.kind = sched::MissionEvent::Kind::kFinished;
  done.status = sched::JobStatus::kFailed;
  done.waves = waves;
  for (const auto& watcher : watchers) watcher(done);
}

Json Server::handle_submit_batch(const Json& request) {
  EHW_TRACE_SPAN("submit");
  const std::uint64_t admit_start_ns = obs::Tracer::now_ns();
  std::vector<sched::MissionSpec> specs;
  const std::string parse_error = batch_specs_from_json(request, specs);
  if (!parse_error.empty()) return make_error(parse_error, "bad_spec");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].lanes > group_->arrays_per_pool()) {
      return make_error("spec " + std::to_string(i) + ": lanes=" +
                            std::to_string(specs[i].lanes) +
                            " exceeds the pool's " +
                            std::to_string(group_->arrays_per_pool()) +
                            " arrays",
                        "bad_spec");
    }
  }

  // Atomic admission: the batch reserves all its inflight slots or none,
  // so a swarm client never has to unpick a half-accepted manifest.
  std::vector<std::shared_ptr<JobRecord>> records;
  records.reserve(specs.size());
  {
    std::lock_guard lock(state_mutex_);
    if (draining_.load(std::memory_order_relaxed)) {
      m_rejected_.add(specs.size());
      return make_error("service is draining; not accepting new missions",
                        "draining");
    }
    if (inflight_ + specs.size() > max_inflight_) {
      m_rejected_.add(specs.size());
      Json response = make_error(
          "rejected: batch of " + std::to_string(specs.size()) +
              " does not fit (" + std::to_string(inflight_) +
              " missions in flight, cap " + std::to_string(max_inflight_) +
              ")",
          "queue_full");
      response.set("rejected", "queue_full");
      response.set("retry_after_ms", retry_after_ms_locked(specs.size()));
      return response;
    }
    inflight_ += specs.size();
    m_inflight_.set(static_cast<double>(inflight_));
    for (sched::MissionSpec& spec : specs) {
      auto record = std::make_shared<JobRecord>();
      record->spec = std::move(spec);
      record->id = next_job_id_++;
      record->submitted_ns = admit_start_ns;
      records.push_back(std::move(record));
    }
  }
  m_submitted_.add(records.size());
  Json jobs = Json::array();
  for (const std::shared_ptr<JobRecord>& record : records) {
    journal_submitted(*record);
    launch_job(record);
    Json entry = Json::object();
    entry.set("job", record->id);
    entry.set("name", record->spec.name);
    jobs.push_back(std::move(entry));
  }
  Json response = make_ok();
  response.set("jobs", std::move(jobs));
  m_submit_latency_.record(obs::Tracer::now_ns() - admit_start_ns);
  return response;
}

void Server::prune_finished_locked() {
  if (config_.max_job_records == 0) return;
  auto it = jobs_.begin();
  while (jobs_.size() > config_.max_job_records && it != jobs_.end()) {
    // Replayed-finished records (no runner) are finished by definition.
    if (it->second->runner != nullptr) {
      const sched::JobStatus status = it->second->runner->status();
      if (status == sched::JobStatus::kQueued ||
          status == sched::JobStatus::kRunning ||
          status == sched::JobStatus::kPreempted) {
        // Never evict live jobs, whatever their age. kPreempted is live
        // too: the mission is mid-migration onto a new slice.
        ++it;
        continue;
      }
    }
    it = jobs_.erase(it);
  }
}

std::shared_ptr<Server::JobRecord> Server::find_job(
    const Json& request, std::string& error) const {
  const Json* job_field = request.get("job");
  if (job_field == nullptr) {
    error = "request is missing 'job' (id or name)";
    return nullptr;
  }
  std::lock_guard lock(state_mutex_);
  if (job_field->is_number()) {
    const double id = job_field->as_number();
    const auto it = json_number_is_exact_int(id) && id >= 0
                        ? jobs_.find(static_cast<std::uint64_t>(id))
                        : jobs_.end();
    if (it == jobs_.end()) {
      error = "no such job id " + job_field->dump();
      return nullptr;
    }
    return it->second;
  }
  if (job_field->is_string()) {
    const std::string& name = job_field->as_string();
    // Latest submission with that name wins (names may repeat over time).
    for (auto it = jobs_.rbegin(); it != jobs_.rend(); ++it) {
      if (it->second->spec.name == name) return it->second;
    }
    error = "no job named '" + name + "'";
    return nullptr;
  }
  error = "'job' must be an id number or a name string";
  return nullptr;
}

Json Server::handle_status(const Json& request) {
  std::string error;
  const std::shared_ptr<JobRecord> record = find_job(request, error);
  if (record == nullptr) return make_error(error, "unknown_job");
  Json response = make_ok();
  response.set("job", record->id);
  response.set("name", record->spec.name);
  response.set("kind", sched::kind_name(record->spec.kind));
  response.set("lanes", static_cast<std::uint64_t>(record->spec.lanes));
  std::shared_ptr<sched::MissionRunner> runner;
  {
    // Snapshot under the lock: migration swaps the runner (and the
    // terminal-failure path rewrites the journal_* fields) on job
    // threads.
    std::lock_guard lock(state_mutex_);
    runner = record->runner;
    if (runner == nullptr) {
      response.set("status", record->journal_status);
      response.set("waves", record->journal_waves);
      if (const Json* sim_ns = record->journaled.get("sim_ns")) {
        response.set("sim_ns", *sim_ns);
      }
      if (record->replayed_from_journal) response.set("replayed", true);
      return response;
    }
  }
  const sched::JobStatus status = runner->status();
  response.set("status", status_name(status));
  response.set("waves", runner->waves_completed());
  if (status != sched::JobStatus::kQueued &&
      status != sched::JobStatus::kRunning &&
      status != sched::JobStatus::kPreempted) {
    response.set("sim_ns", std::to_string(runner->sim_duration()));
  }
  return response;
}

Json Server::handle_result(const Json& request) {
  std::string error;
  const std::shared_ptr<JobRecord> record = find_job(request, error);
  if (record == nullptr) return make_error(error, "unknown_job");
  for (;;) {
    std::shared_ptr<sched::MissionRunner> runner;
    {
      std::lock_guard lock(state_mutex_);
      runner = record->runner;
      if (runner == nullptr) {
        // Re-served verbatim from the journal (previous incarnation) or
        // from the terminal-failure record of a failed migration.
        Json response = record->journaled.is_object() ? record->journaled
                                                      : Json::object();
        if (response.get("status") == nullptr) {
          response.set("status", record->journal_status);
        }
        response.set("ok", true);
        response.set("job", record->id);
        response.set("name", record->spec.name);
        response.set("kind", sched::kind_name(record->spec.kind));
        response.set("waves", record->journal_waves);
        if (record->replayed_from_journal) response.set("replayed", true);
        return response;
      }
    }
    // Blocks this session thread until the job leaves the running set;
    // the connection is dedicated to the wait (use another for control
    // ops).
    const sched::JobOutcome& outcome = runner->result();
    if (runner->status() == sched::JobStatus::kPreempted) {
      // Mid-migration: the mission continues on a new slice. Wait for
      // the record to move past this incarnation, then wait on that one.
      std::unique_lock lock(state_mutex_);
      state_cv_.wait(lock, [&] { return record->runner != runner; });
      continue;
    }
    Json response =
        outcome_to_json(record->spec.kind, runner->status(), outcome);
    response.set("ok", true);
    response.set("job", record->id);
    response.set("name", record->spec.name);
    response.set("kind", sched::kind_name(record->spec.kind));
    response.set("waves", runner->waves_completed());
    return response;
  }
}

Json Server::handle_cancel(const Json& request) {
  std::string error;
  const std::shared_ptr<JobRecord> record = find_job(request, error);
  if (record == nullptr) return make_error(error, "unknown_job");
  Json response = make_ok();
  response.set("job", record->id);
  std::shared_ptr<sched::MissionRunner> runner;
  {
    std::lock_guard lock(state_mutex_);
    runner = record->runner;
    if (runner == nullptr) {  // replayed/terminal: long finished, no-op
      response.set("status", record->journal_status);
      return response;
    }
  }
  runner->cancel();
  response.set("status", status_name(runner->status()));
  return response;
}

Json Server::handle_list() {
  Json jobs = Json::array();
  const std::uint64_t now_ns = obs::Tracer::now_ns();
  {
    std::lock_guard lock(state_mutex_);
    for (const auto& [id, record] : jobs_) {
      Json entry = Json::object();
      entry.set("job", id);
      entry.set("name", record->spec.name);
      entry.set("kind", sched::kind_name(record->spec.kind));
      entry.set("lanes", static_cast<std::uint64_t>(record->spec.lanes));
      // Additive: time since this incarnation admitted the job (absent
      // for journal-replayed records — their admission predates us).
      if (record->submitted_ns != 0 && now_ns >= record->submitted_ns) {
        entry.set("age_ms", static_cast<std::uint64_t>(
                                (now_ns - record->submitted_ns) / 1000000));
      }
      if (record->runner != nullptr) {
        entry.set("status", status_name(record->runner->status()));
        entry.set("waves", record->runner->waves_completed());
      } else {
        entry.set("status", record->journal_status);
        entry.set("waves", record->journal_waves);
      }
      jobs.push_back(std::move(entry));
    }
  }
  Json response = make_ok();
  response.set("jobs", std::move(jobs));
  return response;
}

Json Server::handle_stats() {
  // Lock-free mirrors, not pool_stats(): a stats poll (the forwarder
  // hits this a few times a second per backend) must never serialize
  // against job bookkeeping under the pool mutexes.
  const sched::PoolGroup::GroupStats group_stats = group_->stats();
  const sched::CacheStats cache_stats = group_->cache_stats();
  const ServiceStats service = service_stats();

  Json pool = pool_stats_json(group_stats.total);
  Json pools = Json::array();
  for (std::size_t i = 0; i < group_stats.per_pool.size(); ++i) {
    Json row = pool_stats_json(group_stats.per_pool[i]);
    row.set("pool", static_cast<std::uint64_t>(i));
    pools.push_back(std::move(row));
  }

  const sched::PlacementPolicy::Stats placement_stats =
      group_->placement_stats();
  Json placement = Json::object();
  placement.set("pools", static_cast<std::uint64_t>(group_->pool_count()));
  placement.set("placed", placement_stats.placed);
  placement.set("affinity_hits", placement_stats.affinity_hits);
  placement.set("spills", placement_stats.spills);

  Json cache = Json::object();
  cache.set("hits", cache_stats.hits);
  cache.set("misses", cache_stats.misses);
  cache.set("evictions", cache_stats.evictions);
  cache.set("hit_rate", cache_stats.hit_rate());

  const evo::FitnessMemoStats memo_stats = group_->memo_stats();
  Json memo = Json::object();
  memo.set("hits", memo_stats.hits);
  memo.set("misses", memo_stats.misses);
  memo.set("evictions", memo_stats.evictions);
  memo.set("hit_rate", memo_stats.hit_rate());

  Json svc = Json::object();
  svc.set("protocol", kProtocolVersion);
  svc.set("version", kVersion);
  svc.set("instance_id", instance_id_);
  svc.set("epoch", epoch_);
  svc.set("connections", service.connections);
  svc.set("sessions_open", static_cast<std::uint64_t>(service.sessions_open));
  svc.set("inflight", static_cast<std::uint64_t>(service.inflight));
  svc.set("max_inflight", static_cast<std::uint64_t>(service.max_inflight));
  svc.set("draining", service.draining);
  svc.set("submitted", service.submitted);
  svc.set("rejected", service.rejected);
  svc.set("migrations", service.migrations);

  // Additive: histogram summaries for `mpa top` and operator scripts.
  // The full bucket data stays on the Prometheus endpoint.
  const auto hist_summary = [](const obs::Histogram& hist) {
    const obs::Histogram::Snapshot snap = hist.snapshot();
    Json out = Json::object();
    out.set("count", snap.count);
    out.set("mean_ns", snap.mean());
    out.set("p50_ns", snap.quantile(0.50));
    out.set("p90_ns", snap.quantile(0.90));
    out.set("p99_ns", snap.quantile(0.99));
    return out;
  };
  Json telemetry = Json::object();
  telemetry.set("submit_ack_latency", hist_summary(m_submit_latency_));
  telemetry.set("mission_wall_time", hist_summary(m_mission_wall_));
  telemetry.set("mission_sim_time", hist_summary(m_mission_sim_));
  telemetry.set("trace_armed", obs::Tracer::armed());

  Json response = make_ok();
  response.set("pool", std::move(pool));
  response.set("pools", std::move(pools));
  response.set("placement", std::move(placement));
  response.set("cache", std::move(cache));
  response.set("memo", std::move(memo));
  response.set("service", std::move(svc));
  response.set("telemetry", std::move(telemetry));
  if (journal_ != nullptr) {
    const JournalStats js = journal_stats();
    Json journal = Json::object();
    journal.set("dir", journal_->dir());
    journal.set("appended", js.appended);
    journal.set("replayed_records", js.replayed_records);
    journal.set("replayed_finished", js.replayed_finished);
    journal.set("resumed", js.resumed);
    journal.set("resumed_from_checkpoint", js.resumed_from_checkpoint);
    journal.set("corrupt", js.corrupt);
    journal.set("truncated_tail", js.truncated_tail);
    journal.set("checkpoints_written", js.checkpoints_written);
    journal.set("checkpoint_every", config_.checkpoint_every);
    journal.set("warm_memo_loaded", js.warm_memo_loaded);
    journal.set("warm_cache_loaded", js.warm_cache_loaded);
    response.set("journal", std::move(journal));
  }
  return response;
}

Json Server::handle_health() {
  Json arrays = Json::array();
  for (const sched::PoolGroup::GroupArrayHealth& entry_health :
       group_->array_health()) {
    const sched::ArrayPool::ArrayHealth& health = entry_health.health;
    Json entry = Json::object();
    entry.set("pool", static_cast<std::uint64_t>(entry_health.pool));
    entry.set("array", static_cast<std::uint64_t>(health.id));
    const char* state = "free";
    if (health.state == sched::ArrayPool::ArrayHealth::State::kLeased) {
      state = "leased";
    } else if (health.state ==
               sched::ArrayPool::ArrayHealth::State::kQuarantined) {
      state = "quarantined";
    }
    entry.set("state", state);
    if (health.pending_quarantine) entry.set("pending_quarantine", true);
    if (!health.job.empty()) entry.set("job", health.job);
    arrays.push_back(std::move(entry));
  }
  const sched::ArrayPool::PoolStats stats = group_->stats().total;
  Json response = make_ok();
  response.set("instance_id", instance_id_);
  response.set("epoch", epoch_);
  response.set("arrays", std::move(arrays));
  response.set("healthy", static_cast<std::uint64_t>(stats.healthy()));
  response.set("quarantined",
               static_cast<std::uint64_t>(stats.quarantined));
  response.set("preempted", stats.preempted);
  response.set("deadline_expired", stats.deadline_expired);
  response.set("migrations", m_migrations_.value());
  Json faults = Json::object();
  faults.set("active", fault::active());
  if (fault::active()) {
    Json sites = Json::object();
    for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
      const auto site = static_cast<fault::Site>(s);
      if (fault::hits(site) == 0) continue;
      Json counts = Json::object();
      counts.set("hits", fault::hits(site));
      counts.set("fired", fault::fired(site));
      sites.set(fault::site_name(site), std::move(counts));
    }
    faults.set("sites", std::move(sites));
  }
  response.set("faults", std::move(faults));
  return response;
}

std::optional<Json> Server::handle_watch(Session& session,
                                         const Json& request) {
  std::string error;
  const std::shared_ptr<JobRecord> record = find_job(request, error);
  if (record == nullptr) return make_error(error, "unknown_job");
  const double every_field = request.get_number("every", 1);
  const std::uint64_t every =
      json_number_is_exact_int(every_field) && every_field >= 1
          ? static_cast<std::uint64_t>(every_field)
          : 1;
  Json ack = make_ok();
  ack.set("job", record->id);
  ack.set("watching", record->spec.name);
  if (const Json* id = request.get("id")) ack.set("id", *id);
  const std::shared_ptr<LineChannel> channel = session.channel;
  const std::uint64_t job_id = record->id;
  const auto observer = [channel, job_id,
                         every](const sched::MissionEvent& event) {
    Json frame = Json::object();
    if (event.kind == sched::MissionEvent::Kind::kProgress) {
      if (event.waves % every != 0) return;
      frame.set("event", "progress");
      frame.set("job", job_id);
      frame.set("waves", event.waves);
    } else {
      // A kPreempted finish is not the end of the mission — it is about
      // to migrate; this watcher gets re-attached to the new incarnation
      // (or receives a synthesized failed event if migration cannot go).
      if (event.status == sched::JobStatus::kPreempted) return;
      frame.set("event", "done");
      frame.set("job", job_id);
      frame.set("status", status_name(event.status));
      frame.set("waves", event.waves);
    }
    // Dead channels fail silently; the subscription just goes quiet.
    static_cast<void>(channel->write_line(frame.dump()));
  };
  std::shared_ptr<sched::MissionRunner> runner;
  {
    // Snapshot + register in ONE critical section: a migration either
    // swaps the runner before this (we subscribe to the new incarnation
    // below) or copies record->watchers after it (launch_job re-attaches
    // us) — either way no event window is lost.
    std::lock_guard lock(state_mutex_);
    runner = record->runner;
    if (runner != nullptr) record->watchers.push_back(observer);
  }
  if (runner == nullptr) {
    // Replayed/terminal: ack, then an immediate synthesized done frame
    // (exactly what a live watch on a finished job delivers).
    static_cast<void>(session.channel->write_line(ack.dump()));
    Json frame = Json::object();
    frame.set("event", "done");
    frame.set("job", record->id);
    frame.set("status", record->journal_status);
    frame.set("waves", record->journal_waves);
    static_cast<void>(session.channel->write_line(frame.dump()));
    return std::nullopt;
  }
  // Subscribe BEFORE writing the ack: once the client has the ack it
  // must be guaranteed to observe every subsequent wave (the client
  // handles events that land ahead of the ack). The write lock keeps
  // the frames themselves from interleaving.
  runner->subscribe(observer);
  // A watching session legitimately goes quiet (events flow the other
  // way) — exempt it from the idle-session bound for its lifetime.
  session.channel->set_recv_timeout(0);
  static_cast<void>(session.channel->write_line(ack.dump()));
  return std::nullopt;
}

Json Server::handle_trace(const Json& request) {
  obs::Tracer& tracer = obs::Tracer::global();
  const std::string mode = request.get_string("mode", "dump");
  Json response = make_ok();
  if (mode == "arm") {
    tracer.arm();
  } else if (mode == "disarm") {
    tracer.disarm();
  } else if (mode == "clear") {
    tracer.clear();
  } else if (mode == "dump") {
    response.set("trace", tracer.export_chrome());
  } else {
    return make_error(
        "unknown trace mode '" + mode + "' (dump|arm|disarm|clear)",
        "bad_request");
  }
  response.set("armed", obs::Tracer::armed());
  response.set("recorded", tracer.recorded());
  response.set("dropped", tracer.dropped());
  return response;
}

void Server::refresh_gauges() {
  const sched::ArrayPool::PoolStats pool = group_->stats().total;
  metrics_.gauge("mpa_queue_depth").set(static_cast<double>(pool.queued));
  metrics_.gauge("mpa_running_missions").set(static_cast<double>(pool.running));
  metrics_.gauge("mpa_free_arrays").set(static_cast<double>(pool.free_arrays));
  metrics_.gauge("mpa_quarantined_arrays")
      .set(static_cast<double>(pool.quarantined));

  const sched::CacheStats cache = group_->cache_stats();
  metrics_.gauge("mpa_compiled_cache_hit_rate").set(cache.hit_rate());
  const evo::FitnessMemoStats memo = group_->memo_stats();
  metrics_.gauge("mpa_fitness_memo_hit_rate").set(memo.hit_rate());

  const sched::PlacementPolicy::Stats placement = group_->placement_stats();
  metrics_.gauge("mpa_placement_placed")
      .set(static_cast<double>(placement.placed));
  metrics_.gauge("mpa_placement_affinity_hits")
      .set(static_cast<double>(placement.affinity_hits));
  metrics_.gauge("mpa_placement_spills")
      .set(static_cast<double>(placement.spills));

  const WorkStealPool::Stats steal = WorkStealPool::shared().stats();
  metrics_.gauge("mpa_steal_tasks_executed")
      .set(static_cast<double>(steal.executed));
  metrics_.gauge("mpa_steal_tasks_stolen")
      .set(static_cast<double>(steal.stolen));

  if (fault::active()) {
    for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
      const auto site = static_cast<fault::Site>(s);
      if (fault::hits(site) == 0) continue;
      metrics_
          .gauge(std::string("mpa_fault_fired{site=\"") +
                 fault::site_name(site) + "\"}")
          .set(static_cast<double>(fault::fired(site)));
    }
  }

  const ServiceStats service = service_stats();
  metrics_.gauge("mpa_sessions_open")
      .set(static_cast<double>(service.sessions_open));
}

std::string Server::metrics_text() {
  refresh_gauges();
  return metrics_.to_prometheus();
}

Json Server::handle_drain(const Json& request) {
  drain();
  if (request.get_bool("wait", false)) {
    std::unique_lock lock(state_mutex_);
    state_cv_.wait(lock, [this] { return inflight_ == 0; });
  }
  Json response = make_ok();
  response.set("draining", true);
  {
    std::lock_guard lock(state_mutex_);
    response.set("inflight", static_cast<std::uint64_t>(inflight_));
  }
  return response;
}

}  // namespace ehw::svc
