#include "ehw/svc/forwarder.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "ehw/common/fault.hpp"
#include "ehw/common/persist.hpp"
#include "ehw/common/rng.hpp"
#include "ehw/common/version.hpp"
#include "ehw/obs/trace.hpp"
#include "ehw/sched/checkpoint_store.hpp"
#include "ehw/svc/journal.hpp"

namespace ehw::svc {
namespace {

Json greeting_frame() {
  Json frame = Json::object();
  frame.set("event", "hello");
  frame.set("service", kServiceName);
  frame.set("protocol", kProtocolVersion);
  frame.set("version", kVersion);
  frame.set("role", "forwarder");
  return frame;
}

/// Sums one numeric field of a backend's cached "pool" section into an
/// aggregate object (missing fields count 0).
void sum_field(Json& total, const Json& pool, const char* key) {
  total.set(key, total.get_number(key, 0) + pool.get_number(key, 0));
}

constexpr const char* kPoolFields[] = {
    "arrays",    "free_arrays", "running",   "queued",
    "submitted", "done",        "failed",    "cancelled",
    "quarantined", "healthy",   "preempted", "deadline_expired"};

}  // namespace

Forwarder::Forwarder(ForwarderConfig config) : config_(std::move(config)) {
  if (config_.backends.empty()) {
    throw std::runtime_error("forwarder needs at least one backend");
  }
  if (config_.poll_ms <= 0) config_.poll_ms = 250;
  if (config_.down_after <= 0) config_.down_after = 1;
  for (const BackendConfig& backend : config_.backends) {
    backend_configs_.push_back(backend);
  }
  backends_.resize(backend_configs_.size());
  // One synchronous poll round before the listener exists: the first
  // submit already has real capacity snapshots to place against, and
  // backends that are down at boot start down (no first-poll grace).
  for (std::size_t i = 0; i < backends_.size(); ++i) poll_backend(i);
  listener_ = std::make_unique<Listener>(config_.address, config_.port);
  port_ = listener_->port();
  acceptor_ = std::thread([this] { accept_loop(); });
  poller_ = std::thread([this] { poll_loop(); });
}

Forwarder::~Forwarder() { stop(); }

void Forwarder::drain() {
  draining_.store(true, std::memory_order_relaxed);
  std::size_t members = 0;
  {
    std::lock_guard lock(state_mutex_);
    members = backends_.size();
  }
  for (std::size_t i = 0; i < members; ++i) {
    bool reachable;
    {
      std::lock_guard lock(state_mutex_);
      reachable = backends_[i].target.reachable && !backends_[i].removed;
    }
    if (!reachable) continue;
    try {
      Client client = quick_client(i);
      static_cast<void>(client.drain(/*wait=*/false));
    } catch (const std::exception&) {
      // A backend that just died is already not accepting anything.
    }
  }
  state_cv_.notify_all();
}

void Forwarder::stop() {
  if (stopped_) return;
  stopping_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard lock(poll_mutex_);
  }
  poll_cv_.notify_all();
  if (poller_.joinable()) poller_.join();
  if (acceptor_.joinable()) acceptor_.join();
  if (listener_ != nullptr) listener_->close();
  std::vector<std::unique_ptr<Session>> to_join;
  {
    std::lock_guard lock(sessions_mutex_);
    to_join.swap(sessions_);
  }
  for (const auto& session : to_join) session->channel->shutdown();
  state_cv_.notify_all();
  for (const auto& session : to_join) {
    if (session->thread.joinable()) session->thread.join();
  }
  stopped_ = true;
}

ForwarderStats Forwarder::forwarder_stats() const {
  ForwarderStats stats;
  stats.submitted = m_submitted_.value();
  stats.rejected = m_rejected_.value();
  stats.failovers = m_failovers_.value();
  stats.failover_resumed = m_failover_resumed_.value();
  stats.fences = m_fences_.value();
  stats.rejoins = m_rejoins_.value();
  stats.shed = m_shed_.value();
  std::lock_guard lock(state_mutex_);
  stats.routes = routes_.size();
  for (const BackendState& backend : backends_) {
    if (!backend.removed && backend.target.reachable) ++stats.backends_up;
  }
  stats.draining = draining_.load(std::memory_order_relaxed);
  return stats;
}

void Forwarder::refresh_gauges() {
  const std::uint64_t now_ns = obs::Tracer::now_ns();
  std::lock_guard lock(state_mutex_);
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    const BackendState& backend = backends_[i];
    const std::string label = "{backend=\"" + std::to_string(i) + "\"}";
    metrics_.gauge("mpa_backend_up" + label)
        .set(backend.target.reachable ? 1.0 : 0.0);
    metrics_.gauge("mpa_backend_polls" + label)
        .set(static_cast<double>(backend.polls));
    if (backend.last_good_poll_ns != 0) {
      metrics_.gauge("mpa_backend_poll_age_ms" + label)
          .set(static_cast<double>(now_ns - backend.last_good_poll_ns) / 1e6);
    }
    metrics_.gauge("mpa_backend_free_arrays" + label)
        .set(static_cast<double>(backend.target.free_arrays));
    metrics_.gauge("mpa_backend_queued" + label)
        .set(static_cast<double>(backend.target.queued));
    metrics_.gauge("mpa_backend_running" + label)
        .set(static_cast<double>(backend.target.running));
    metrics_.gauge("mpa_backend_epoch" + label)
        .set(static_cast<double>(backend.epoch));
    metrics_.gauge("mpa_backend_fences" + label)
        .set(static_cast<double>(backend.fences));
    metrics_.gauge("mpa_backend_rejoins" + label)
        .set(static_cast<double>(backend.rejoins));
  }
  metrics_.gauge("mpa_routes").set(static_cast<double>(routes_.size()));
}

std::string Forwarder::metrics_text() {
  refresh_gauges();
  return metrics_.to_prometheus();
}

Client Forwarder::quick_client(std::size_t backend) const {
  const BackendConfig config = backend_config(backend);
  return Client(config.port, config.address, config_.io_timeout_ms);
}

BackendConfig Forwarder::backend_config(std::size_t backend) const {
  std::lock_guard lock(state_mutex_);
  return backend_configs_[backend];
}

// --- liveness + placement ---------------------------------------------------

void Forwarder::poll_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock lock(poll_mutex_);
      poll_cv_.wait_for(lock, std::chrono::milliseconds(config_.poll_ms), [this] {
        return stopping_.load(std::memory_order_relaxed);
      });
    }
    if (stopping_.load(std::memory_order_relaxed)) return;
    const std::uint64_t now_ns = obs::Tracer::now_ns();
    std::vector<std::size_t> due;
    {
      std::lock_guard lock(state_mutex_);
      for (std::size_t i = 0; i < backends_.size(); ++i) {
        const BackendState& backend = backends_[i];
        if (backend.removed) continue;
        // Down backends re-poll on a jittered exponential schedule so a
        // cluster-wide restart doesn't thundering-herd one survivor.
        if (backend.down && now_ns < backend.next_poll_ns) continue;
        due.push_back(i);
      }
    }
    for (const std::size_t i : due) poll_backend(i);
  }
}

void Forwarder::poll_backend(std::size_t index) {
  BackendConfig endpoint;
  {
    std::lock_guard lock(state_mutex_);
    if (index >= backends_.size() || backends_[index].removed) return;
    endpoint = backend_configs_[index];
  }
  Json stats;
  bool ok = false;
  std::string instance_id;
  std::uint64_t epoch = 0;
  try {
    if (fault::should_fire(fault::Site::kPollError)) {
      throw std::runtime_error("injected poll_error fault");
    }
    Client client(endpoint.port, endpoint.address, config_.io_timeout_ms);
    // The greeting doubles as the identity probe: instance_id + epoch.
    instance_id = client.server_instance_id();
    epoch = client.server_epoch();
    if (fault::should_fire(fault::Site::kBackendHello)) {
      throw std::runtime_error("injected backend_hello fault");
    }
    stats = client.stats();
    ok = stats.get_bool("ok", false);
  } catch (const std::exception&) {
    ok = false;
  }
  std::vector<std::shared_ptr<Route>> orphans;
  std::vector<std::string> fence;
  bool revive = false;
  bool cold = false;
  std::uint64_t old_epoch = 0;
  {
    std::lock_guard lock(state_mutex_);
    BackendState& backend = backends_[index];
    ++backend.polls;
    if (!ok) {
      ++backend.failures;
      if (backend.down) {
        // Still dead: stretch the re-poll schedule.
        ++backend.backoff_round;
        backend.next_poll_ns =
            obs::Tracer::now_ns() +
            backoff_delay_ns(index, backend.backoff_round);
      } else if (backend.failures >= config_.down_after) {
        orphans = take_down_locked(index);
      }
    } else if (backend.down) {
      // Revival edge: do NOT trust the backend yet. The fence cancels
      // (missions that failed over elsewhere while it was away) must
      // land first — they run outside the lock below.
      revive = true;
      old_epoch = backend.epoch;
      cold = backend.epoch != 0 && (epoch != backend.epoch ||
                                    instance_id != backend.instance_id);
      fence = backend.fence_names;
    }
  }
  if (!ok) {
    for (const std::shared_ptr<Route>& route : orphans) {
      failover_route(route, index);
    }
    return;
  }
  if (revive && !fence.empty()) {
    // Split-brain fence: exactly one execution may reach a terminal
    // result, and the failed-over incarnation already owns each route.
    // Cancel the zombie's copies BY NAME (names survive restarts and
    // journal replays; backend job ids do not) before re-admission.
    try {
      Client client(endpoint.port, endpoint.address, config_.io_timeout_ms);
      for (const std::string& name : fence) {
        Json cancel = Json::object();
        cancel.set("op", "cancel");
        cancel.set("job", name);
        // unknown_job is success too: the revived daemon never knew or
        // already dropped the mission.
        static_cast<void>(client.request(cancel));
      }
    } catch (const std::exception&) {
      // The revival didn't hold still long enough to fence. Keep the
      // names queued and the backend untrusted; the next poll retries.
      return;
    }
  }
  std::lock_guard lock(state_mutex_);
  BackendState& backend = backends_[index];
  if (revive) {
    ++backend.rejoins;
    m_rejoins_.add();
    backend.fences += fence.size();
    if (!fence.empty()) m_fences_.add(fence.size());
    backend.fence_names.clear();
    if (cold) {
      // Epoch moved: a NEW incarnation (restart). Its memo/cache warmth
      // is gone — make sure no affinity survived and start it cold.
      placement_.forget_target(index);
      backend.last_fence =
          "cold rejoin: epoch " + std::to_string(old_epoch) + " -> " +
          std::to_string(epoch) +
          (fence.empty() ? ""
                         : ", fenced " + std::to_string(fence.size()) +
                               " mission(s)");
    } else {
      backend.last_fence =
          fence.empty() ? "warm rejoin (same epoch)"
                        : "warm rejoin: fenced " +
                              std::to_string(fence.size()) +
                              " stalled mission(s)";
    }
    backend.down = false;
    backend.backoff_round = 0;
    backend.next_poll_ns = 0;
  }
  backend.failures = 0;
  backend.instance_id = instance_id;
  backend.epoch = epoch;
  backend.target.reachable = true;
  backend.last_good_poll_ns = obs::Tracer::now_ns();
  // The poll is the truth: whatever the backend accepted is in its
  // own counters now, so the optimistic layer starts over.
  backend.opt_lanes = 0;
  backend.opt_jobs = 0;
  if (const Json* pool = stats.get("pool"); pool != nullptr) {
    backend.pool_json = *pool;
    backend.target.total_arrays =
        static_cast<std::size_t>(pool->get_number("arrays", 0));
    backend.target.free_arrays =
        static_cast<std::size_t>(pool->get_number("free_arrays", 0));
    backend.target.quarantined =
        static_cast<std::size_t>(pool->get_number("quarantined", 0));
    backend.target.queued =
        static_cast<std::size_t>(pool->get_number("queued", 0));
    backend.target.running =
        static_cast<std::size_t>(pool->get_number("running", 0));
  }
}

std::vector<std::shared_ptr<Forwarder::Route>> Forwarder::take_down_locked(
    std::size_t index) {
  BackendState& backend = backends_[index];
  backend.target.reachable = false;
  backend.down = true;
  backend.backoff_round = 0;
  backend.next_poll_ns = obs::Tracer::now_ns() + backoff_delay_ns(index, 0);
  // The dead backend's memo/cache died with it: steering repeats at the
  // corpse would burn the down-detection window for nothing.
  placement_.forget_target(index);
  std::vector<std::shared_ptr<Route>> orphans;
  for (const auto& [id, route] : routes_) {
    if (!route->finished && route->backend == index) {
      orphans.push_back(route);
      // The corpse may still be executing this mission (a stall, not a
      // death). Remember the NAME so a revival is fenced before trust.
      backend.fence_names.push_back(route->spec.name);
    }
  }
  return orphans;
}

void Forwarder::mark_backend_down(std::size_t index) {
  std::vector<std::shared_ptr<Route>> orphans;
  {
    std::lock_guard lock(state_mutex_);
    if (index >= backends_.size() || backends_[index].removed) return;
    BackendState& backend = backends_[index];
    backend.failures = std::max(backend.failures, config_.down_after);
    if (!backend.down) orphans = take_down_locked(index);
  }
  for (const std::shared_ptr<Route>& route : orphans) {
    failover_route(route, index);
  }
}

std::vector<sched::PlacementTarget> Forwarder::target_snapshot_locked()
    const {
  std::vector<sched::PlacementTarget> targets(backends_.size());
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    const BackendState& backend = backends_[i];
    targets[i] = backend.target;
    if (backend.removed) {
      targets[i].reachable = false;
      continue;
    }
    // Overlay the optimistic layer: submits placed since the last poll
    // that haven't been seen finishing yet still hold their lanes.
    targets[i].free_arrays -=
        std::min(targets[i].free_arrays, backend.opt_lanes);
    targets[i].running += backend.opt_jobs;
  }
  return targets;
}

std::uint64_t Forwarder::backoff_delay_ns(int poll_ms, std::uint64_t seed,
                                          std::size_t index, int round) {
  const std::uint64_t base_ms = static_cast<std::uint64_t>(poll_ms);
  const std::uint64_t cap_ms = std::max<std::uint64_t>(base_ms, 10'000);
  std::uint64_t delay_ms = base_ms << std::min(round, 6);
  delay_ms = std::min(delay_ms, cap_ms);
  // Deterministic jitter in [0, delay/2): a stateless hash keyed by the
  // fault-plan seed, so a seeded chaos run replays the exact schedule.
  const std::uint64_t draw = hash_mix(seed, static_cast<std::uint64_t>(index),
                                      static_cast<std::uint64_t>(round)) %
                             1024;
  const std::uint64_t jitter_ms = delay_ms * draw / 2048;
  return (delay_ms + jitter_ms) * 1'000'000ULL;
}

std::uint64_t Forwarder::backoff_delay_ns(std::size_t index,
                                          int round) const {
  return backoff_delay_ns(config_.poll_ms, fault::plan_seed(), index, round);
}

std::uint64_t Forwarder::shed_retry_after_ms_locked() const {
  // The next poll refreshes capacity, so the hint starts at one poll
  // interval and grows with the backlog the shed is protecting.
  std::uint64_t backlog = 0;
  for (const BackendState& backend : backends_) {
    if (backend.removed) continue;
    backlog += backend.target.queued + backend.opt_jobs;
  }
  const std::uint64_t hint =
      static_cast<std::uint64_t>(config_.poll_ms) + 25 * backlog;
  return std::clamp<std::uint64_t>(hint, 100, 60'000);
}

sched::PlacementPolicy::Decision Forwarder::place_locked(
    const sched::MissionSpec& spec) {
  const std::vector<sched::PlacementTarget> targets =
      target_snapshot_locked();
  const sched::PlacementPolicy::Decision decision = placement_.place(
      sched::PlacementPolicy::fingerprint(spec), spec.lanes, targets);
  if (decision.ok) {
    // Optimistic bump: polls refresh the truth, but a burst of submits
    // between polls must not all pile onto the same snapshot.
    BackendState& winner = backends_[decision.target];
    winner.opt_lanes += spec.lanes;
    ++winner.opt_jobs;
  }
  return decision;
}

void Forwarder::release_route_locked(Route& route) {
  if (route.capacity_released) return;
  route.capacity_released = true;
  if (route.backend >= backends_.size()) return;
  BackendState& backend = backends_[route.backend];
  backend.opt_lanes -= std::min(backend.opt_lanes, route.spec.lanes);
  if (backend.opt_jobs > 0) --backend.opt_jobs;
}

// --- failover ---------------------------------------------------------------

void Forwarder::failover_route(const std::shared_ptr<Route>& route,
                               std::size_t dead_backend) {
  // The backend's journal holds the mission's latest generation-boundary
  // checkpoint (job-<id>.ckpt sidecar). Reading it is what turns "the
  // machine died" into "the mission hopped hosts mid-flight".
  Json resume;
  bool have_resume = false;
  const std::string dir = backend_config(dead_backend).journal_dir;
  std::uint64_t backend_job = 0;
  {
    std::lock_guard lock(state_mutex_);
    backend_job = route->backend_job;
  }
  if (!dir.empty()) {
    const std::string path =
        MissionJournal::checkpoint_path_in(dir, backend_job);
    if (file_exists(path)) {
      sched::MissionSpec saved_spec;
      platform::MissionCheckpoint checkpoint;
      if (sched::load_mission_checkpoint(path, saved_spec, checkpoint)
              .empty() &&
          saved_spec.name == route->spec.name) {
        resume = platform::mission_checkpoint_to_json(checkpoint);
        have_resume = true;
      }
      // Mismatched or unreadable state is dropped: a from-scratch rerun
      // is still bit-identical, resuming someone else's state is not.
    }
  }
  sched::PlacementPolicy::Decision decision;
  {
    std::lock_guard lock(state_mutex_);
    decision = place_locked(route->spec);
  }
  if (!decision.ok) {
    finish_route_failed(route, "no surviving backend can host " +
                                   std::to_string(route->spec.lanes) +
                                   " lane(s): " + decision.error);
    return;
  }
  try {
    Client client = quick_client(decision.target);
    Json request = Json::object();
    request.set("op", "submit");
    request.set("spec", spec_to_json(route->spec));
    if (have_resume) request.set("resume", resume);
    const Json response = client.request(request);
    if (!response.get_bool("ok", false)) {
      finish_route_failed(
          route, "failover submit rejected: " +
                     response.get_string("error", "unknown error"));
      return;
    }
    {
      std::lock_guard lock(state_mutex_);
      route->backend = decision.target;
      route->backend_job =
          static_cast<std::uint64_t>(response.get_number("job", 0));
      route->placed_epoch = backends_[decision.target].epoch;
      ++route->generation;
      ++route->failovers;
    }
    m_failovers_.add();
    if (have_resume) m_failover_resumed_.add();
    state_cv_.notify_all();
  } catch (const std::exception& e) {
    finish_route_failed(route,
                        std::string("failover submit failed: ") + e.what());
  }
}

void Forwarder::finish_route_failed(const std::shared_ptr<Route>& route,
                                    const std::string& error) {
  Json body = Json::object();
  body.set("ok", true);
  body.set("status", status_name(sched::JobStatus::kFailed));
  body.set("error", "failover failed: " + error);
  {
    std::lock_guard lock(state_mutex_);
    body.set("job", route->id);
    body.set("name", route->spec.name);
    body.set("kind", sched::kind_name(route->spec.kind));
    route->finished = true;
    route->final_status = status_name(sched::JobStatus::kFailed);
    route->final_result = std::move(body);
    release_route_locked(*route);
    ++route->generation;
  }
  state_cv_.notify_all();
}

// --- northbound service loop ------------------------------------------------

void Forwarder::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::optional<Socket> socket = listener_->accept_one(/*timeout_ms=*/100);
    if (!socket.has_value()) continue;
    socket->set_send_timeout(/*timeout_ms=*/10000);
    auto session = std::make_unique<Session>(std::move(*socket));
    Session* raw = session.get();
    {
      std::lock_guard lock(sessions_mutex_);
      auto alive = sessions_.begin();
      for (auto& existing : sessions_) {
        if (existing->done.load(std::memory_order_acquire) &&
            existing->thread.joinable()) {
          existing->thread.join();
          continue;
        }
        *alive++ = std::move(existing);
      }
      sessions_.erase(alive, sessions_.end());
      sessions_.push_back(std::move(session));
    }
    m_connections_.add();
    raw->thread = std::thread([this, raw] { session_loop(raw); });
  }
}

void Forwarder::session_loop(Session* session) {
  LineChannel& channel = *session->channel;
  channel.set_max_line(config_.max_line);
  if (config_.idle_timeout_ms > 0) {
    channel.set_recv_timeout(config_.idle_timeout_ms);
  }
  if (channel.write_line(greeting_frame().dump())) {
    std::string line;
    for (;;) {
      const LineChannel::ReadStatus read = channel.read_frame(line);
      if (read == LineChannel::ReadStatus::kOversize) {
        // Bounded buffering: the oversize frame was discarded as it
        // streamed in, never accumulated. Tell the peer why, then hang
        // up — framing is lost after a dropped line.
        const Json response = make_error(
            "frame exceeds the " + std::to_string(channel.max_line()) +
                " byte line limit",
            "oversize_frame");
        static_cast<void>(channel.write_line(response.dump()));
        break;
      }
      if (read == LineChannel::ReadStatus::kTimeout) {
        const Json response = make_error(
            "idle timeout: no request within " +
                std::to_string(config_.idle_timeout_ms) + " ms",
            "idle_timeout");
        static_cast<void>(channel.write_line(response.dump()));
        break;
      }
      if (read != LineChannel::ReadStatus::kLine) break;
      Json request;
      try {
        request = Json::parse(line);
        if (!request.is_object()) {
          throw JsonError("request must be a JSON object", 0);
        }
      } catch (const JsonError& e) {
        const Json response = make_error(
            std::string("malformed request: ") + e.what(), "bad_request");
        if (!channel.write_line(response.dump())) break;
        continue;
      }
      std::optional<Json> response = handle_request(*session, request);
      if (response.has_value()) {
        if (const Json* id = request.get("id")) response->set("id", *id);
        if (!channel.write_line(response->dump())) break;
      }
      if (session->close_after_reply) break;
    }
  }
  channel.shutdown();
  session->done.store(true, std::memory_order_release);
}

std::optional<Json> Forwarder::handle_request(Session& session,
                                              const Json& request) {
  const Json* op_field = request.get("op");
  if (op_field == nullptr || !op_field->is_string()) {
    return make_error("request is missing string member 'op'", "bad_request");
  }
  const std::string& op = op_field->as_string();
  if (op == "hello") {
    const double protocol = request.get_number("protocol", -1);
    if (protocol != static_cast<double>(kProtocolVersion)) {
      session.close_after_reply = true;
      return make_error("unsupported protocol version (server speaks " +
                            std::to_string(kProtocolVersion) + ")",
                        "unsupported_protocol");
    }
    session.greeted = true;
    Json response = make_ok();
    response.set("service", kServiceName);
    response.set("protocol", kProtocolVersion);
    response.set("version", kVersion);
    response.set("role", "forwarder");
    return response;
  }
  if (!session.greeted) {
    return make_error("handshake required: send {\"op\":\"hello\","
                      "\"protocol\":" +
                          std::to_string(kProtocolVersion) + "} first",
                      "bad_request");
  }
  if (op == "submit") return handle_submit(request);
  if (op == "submit_batch") return handle_submit_batch(request);
  if (op == "status") return handle_status(request);
  if (op == "result") return handle_result(request);
  if (op == "cancel") return handle_cancel(request);
  if (op == "list") return handle_list();
  if (op == "stats") return handle_stats();
  if (op == "health") return handle_health();
  if (op == "watch") return handle_watch(session, request);
  if (op == "drain") return handle_drain(request);
  if (op == "backend") return handle_backend(request);
  return make_error("unknown op '" + op + "'", "bad_request");
}

Json Forwarder::handle_submit(const Json& request) {
  const Json* spec_field = request.get("spec");
  if (spec_field == nullptr) {
    return make_error("submit needs a 'spec' object", "bad_request");
  }
  sched::MissionSpec spec;
  const std::string spec_error = spec_from_json(*spec_field, spec);
  if (!spec_error.empty()) return make_error(spec_error, "bad_spec");

  sched::PlacementPolicy::Decision decision;
  {
    std::lock_guard lock(state_mutex_);
    if (draining_.load(std::memory_order_relaxed)) {
      m_rejected_.add();
      return make_error("cluster is draining; not accepting new missions",
                        "draining");
    }
    // Brownout shed: when every backend is saturated or cold, placing a
    // default-priority mission would only bury it in someone's queue.
    // Shed it with explicit backpressure instead; missions submitted
    // with priority > 0 ride through and queue.
    if (spec.priority <= 0 &&
        sched::PlacementPolicy::saturated(target_snapshot_locked(),
                                          spec.lanes)) {
      m_rejected_.add();
      m_shed_.add();
      Json response = make_error(
          "cluster saturated: every backend is full or down; low-priority "
          "submit shed",
          "queue_full");
      response.set("shed", true);
      response.set("retry_after_ms", shed_retry_after_ms_locked());
      return response;
    }
    decision = place_locked(spec);
    if (!decision.ok) {
      m_rejected_.add();
      return make_error("no backend can take the mission: " + decision.error,
                        "no_backend");
    }
  }
  // Southbound submit OUTSIDE the lock (network IO).
  Client::Submitted submitted;
  try {
    Client client = quick_client(decision.target);
    submitted = client.submit(spec);
  } catch (const std::exception& e) {
    m_rejected_.add();
    return make_error("backend " + std::to_string(decision.target) +
                          " unreachable: " + e.what(),
                      "no_backend");
  }
  if (!submitted.ok) {
    m_rejected_.add();
    Json response = make_error(submitted.error, submitted.code);
    return response;
  }
  auto route = std::make_shared<Route>();
  route->spec = spec;
  route->backend = decision.target;
  route->backend_job = submitted.job;
  Json response = make_ok();
  {
    std::lock_guard lock(state_mutex_);
    route->id = next_id_++;
    route->placed_epoch = backends_[decision.target].epoch;
    routes_.emplace(route->id, route);
    response.set("job", route->id);
  }
  m_submitted_.add();
  response.set("name", spec.name);
  response.set("backend", static_cast<std::uint64_t>(decision.target));
  if (decision.affinity_hit) response.set("affinity", true);
  return response;
}

Json Forwarder::handle_submit_batch(const Json& request) {
  std::vector<sched::MissionSpec> specs;
  const std::string parse_error = batch_specs_from_json(request, specs);
  if (!parse_error.empty()) return make_error(parse_error, "bad_spec");
  if (draining_.load(std::memory_order_relaxed)) {
    m_rejected_.add(specs.size());
    return make_error("cluster is draining; not accepting new missions",
                      "draining");
  }
  // Cluster batches are placed per-spec and submitted per-backend.
  // Admission is atomic WITHIN each backend but not across the cluster:
  // on a partial failure the already-accepted specs are best-effort
  // cancelled and the batch reports the failure.
  std::vector<std::size_t> placement(specs.size());
  {
    std::lock_guard lock(state_mutex_);
    // Batch brownout mirrors the single-submit shed: a batch with no
    // priority>0 spec is refused wholesale when the cluster is saturated
    // (admission is atomic — shedding part of a batch would be worse
    // than either outcome).
    const bool all_low =
        std::all_of(specs.begin(), specs.end(),
                    [](const sched::MissionSpec& spec) {
                      return spec.priority <= 0;
                    });
    if (all_low &&
        sched::PlacementPolicy::saturated(target_snapshot_locked(), 1)) {
      m_rejected_.add(specs.size());
      m_shed_.add(specs.size());
      Json response = make_error(
          "cluster saturated: every backend is full or down; low-priority "
          "batch shed",
          "queue_full");
      response.set("shed", true);
      response.set("retry_after_ms", shed_retry_after_ms_locked());
      return response;
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const sched::PlacementPolicy::Decision decision =
          place_locked(specs[i]);
      if (!decision.ok) {
        m_rejected_.add(specs.size());
        return make_error("spec " + std::to_string(i) +
                              ": no backend can take the mission: " +
                              decision.error,
                          "no_backend");
      }
      placement[i] = decision.target;
    }
  }
  // Group by backend, preserving spec order within each group.
  std::map<std::size_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    groups[placement[i]].push_back(i);
  }
  struct Accepted {
    std::size_t backend = 0;
    std::uint64_t backend_job = 0;
  };
  std::vector<std::optional<Accepted>> accepted(specs.size());
  std::string error;
  std::string code;
  for (const auto& [backend, indices] : groups) {
    std::vector<sched::MissionSpec> group_specs;
    group_specs.reserve(indices.size());
    for (const std::size_t i : indices) group_specs.push_back(specs[i]);
    Client::BatchSubmitted batch;
    try {
      Client client = quick_client(backend);
      batch = client.submit_batch(group_specs);
    } catch (const std::exception& e) {
      batch.ok = false;
      batch.error =
          "backend " + std::to_string(backend) + " unreachable: " + e.what();
      batch.code = "no_backend";
    }
    if (!batch.ok) {
      error = batch.error;
      code = batch.code.empty() ? "no_backend" : batch.code;
      break;
    }
    for (std::size_t k = 0; k < indices.size(); ++k) {
      accepted[indices[k]] = Accepted{backend, batch.jobs[k]};
    }
  }
  if (!error.empty()) {
    // Unwind what landed: cancel accepted missions on their backends.
    for (const std::optional<Accepted>& entry : accepted) {
      if (!entry.has_value()) continue;
      try {
        Client client = quick_client(entry->backend);
        static_cast<void>(client.cancel(entry->backend_job));
      } catch (const std::exception&) {
        // The cancel is advisory; the mission just runs to completion.
      }
    }
    m_rejected_.add(specs.size());
    return make_error(error, code);
  }
  Json jobs = Json::array();
  {
    std::lock_guard lock(state_mutex_);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      auto route = std::make_shared<Route>();
      route->id = next_id_++;
      route->spec = specs[i];
      route->backend = accepted[i]->backend;
      route->backend_job = accepted[i]->backend_job;
      route->placed_epoch = backends_[accepted[i]->backend].epoch;
      routes_.emplace(route->id, route);
      m_submitted_.add();
      Json entry = Json::object();
      entry.set("job", route->id);
      entry.set("name", specs[i].name);
      entry.set("backend", static_cast<std::uint64_t>(accepted[i]->backend));
      jobs.push_back(std::move(entry));
    }
  }
  Json response = make_ok();
  response.set("jobs", std::move(jobs));
  return response;
}

std::shared_ptr<Forwarder::Route> Forwarder::find_route(
    const Json& request, std::string& error) const {
  const Json* job_field = request.get("job");
  if (job_field == nullptr) {
    error = "request is missing 'job' (id or name)";
    return nullptr;
  }
  std::lock_guard lock(state_mutex_);
  if (job_field->is_number()) {
    const double id = job_field->as_number();
    const auto it = json_number_is_exact_int(id) && id >= 0
                        ? routes_.find(static_cast<std::uint64_t>(id))
                        : routes_.end();
    if (it == routes_.end()) {
      error = "no such job id " + job_field->dump();
      return nullptr;
    }
    return it->second;
  }
  if (job_field->is_string()) {
    const std::string& name = job_field->as_string();
    for (auto it = routes_.rbegin(); it != routes_.rend(); ++it) {
      if (it->second->spec.name == name) return it->second;
    }
    error = "no job named '" + name + "'";
    return nullptr;
  }
  error = "'job' must be an id number or a name string";
  return nullptr;
}

Json Forwarder::handle_status(const Json& request) {
  std::string error;
  const std::shared_ptr<Route> route = find_route(request, error);
  if (route == nullptr) return make_error(error, "unknown_job");
  std::size_t backend;
  std::uint64_t backend_job;
  {
    std::lock_guard lock(state_mutex_);
    if (route->finished) {
      Json response = make_ok();
      response.set("job", route->id);
      response.set("name", route->spec.name);
      response.set("kind", sched::kind_name(route->spec.kind));
      response.set("status", route->final_status);
      return response;
    }
    backend = route->backend;
    backend_job = route->backend_job;
  }
  try {
    Client client = quick_client(backend);
    Json response = client.status(backend_job);
    const std::string status = response.get_string("status", "");
    if (status != "queued" && status != "running" && status != "preempted" &&
        response.get_bool("ok", false)) {
      std::lock_guard lock(state_mutex_);
      if (route->backend == backend) release_route_locked(*route);
    }
    response.set("job", route->id);  // clients see the front id
    response.set("backend", static_cast<std::uint64_t>(backend));
    return response;
  } catch (const std::exception& e) {
    return make_error("backend " + std::to_string(backend) +
                          " unreachable: " + e.what(),
                      "backend_down");
  }
}

Json Forwarder::handle_result(const Json& request) {
  std::string error;
  const std::shared_ptr<Route> route = find_route(request, error);
  if (route == nullptr) return make_error(error, "unknown_job");
  for (;;) {
    std::size_t backend;
    std::uint64_t backend_job;
    std::uint64_t generation;
    {
      std::lock_guard lock(state_mutex_);
      if (route->finished) return route->final_result;
      backend = route->backend;
      backend_job = route->backend_job;
      generation = route->generation;
    }
    bool got = false;
    Json response;
    try {
      // Unbounded IO: this wait follows the mission. A dying backend
      // resets the connection; an in-process failover moves the route's
      // generation and this incarnation's answer is discarded below.
      const BackendConfig target = backend_config(backend);
      Client client(target.port, target.address, /*io_timeout_ms=*/0);
      response = client.result(backend_job);
      got = true;
    } catch (const std::exception&) {
      got = false;
    }
    std::unique_lock lock(state_mutex_);
    if (route->finished) return route->final_result;
    if (route->generation != generation) continue;  // re-resolve and rewait
    if (got) {
      release_route_locked(*route);  // terminal southbound: lanes are free
      response.set("job", route->id);
      response.set("name", route->spec.name);
      response.set("backend", static_cast<std::uint64_t>(backend));
      // First terminal answer WINS the route: concurrent waiters and any
      // zombie incarnation that later wakes up all serve this exact
      // payload, so exactly one execution's result is ever observable.
      route->finished = true;
      route->final_status = response.get_string("status", "");
      route->final_result = response;
      state_cv_.notify_all();
      return response;
    }
    // Connection lost with the route still on this incarnation: wait for
    // the poller to declare the backend down and fail the route over (or
    // for a transient blip to pass), then try again.
    state_cv_.wait_for(lock, std::chrono::milliseconds(250), [&] {
      return route->finished || route->generation != generation ||
             stopping_.load(std::memory_order_relaxed);
    });
    if (stopping_.load(std::memory_order_relaxed) && !route->finished &&
        route->generation == generation) {
      return make_error("forwarder stopping", "backend_down");
    }
  }
}

Json Forwarder::handle_cancel(const Json& request) {
  std::string error;
  const std::shared_ptr<Route> route = find_route(request, error);
  if (route == nullptr) return make_error(error, "unknown_job");
  std::size_t backend;
  std::uint64_t backend_job;
  {
    std::lock_guard lock(state_mutex_);
    if (route->finished) {
      Json response = make_ok();
      response.set("job", route->id);
      response.set("status", route->final_status);
      return response;
    }
    backend = route->backend;
    backend_job = route->backend_job;
  }
  try {
    Client client = quick_client(backend);
    Json cancel = Json::object();
    cancel.set("op", "cancel");
    cancel.set("job", backend_job);
    Json response = client.request(cancel);
    response.set("job", route->id);
    return response;
  } catch (const std::exception& e) {
    return make_error("backend " + std::to_string(backend) +
                          " unreachable: " + e.what(),
                      "backend_down");
  }
}

Json Forwarder::handle_list() {
  struct Row {
    std::shared_ptr<Route> route;
    std::size_t backend = 0;
    std::uint64_t backend_job = 0;
    std::uint64_t placed_epoch = 0;
    std::uint64_t failovers = 0;
    bool finished = false;
    std::string status;
    std::uint64_t waves = 0;
  };
  std::vector<Row> rows;
  {
    std::lock_guard lock(state_mutex_);
    rows.reserve(routes_.size());
    for (const auto& [id, route] : routes_) {
      Row row;
      row.route = route;
      row.backend = route->backend;
      row.backend_job = route->backend_job;
      row.placed_epoch = route->placed_epoch;
      row.failovers = route->failovers;
      row.finished = route->finished;
      if (route->finished) row.status = route->final_status;
      rows.push_back(std::move(row));
    }
  }
  // One southbound connection per backend per list call, reused across
  // that backend's rows.
  std::map<std::size_t, std::unique_ptr<Client>> clients;
  for (Row& row : rows) {
    if (row.finished) continue;
    try {
      auto it = clients.find(row.backend);
      if (it == clients.end()) {
        const BackendConfig endpoint = backend_config(row.backend);
        it = clients
                 .emplace(row.backend,
                          std::make_unique<Client>(endpoint.port,
                                                   endpoint.address,
                                                   config_.io_timeout_ms))
                 .first;
      }
      const Json status = it->second->status(row.backend_job);
      row.status = status.get_string("status", "unknown");
      row.waves = static_cast<std::uint64_t>(status.get_number("waves", 0));
    } catch (const std::exception&) {
      clients.erase(row.backend);
      row.status = "unreachable";
    }
  }
  Json jobs = Json::array();
  for (const Row& row : rows) {
    Json entry = Json::object();
    entry.set("job", row.route->id);
    entry.set("name", row.route->spec.name);
    entry.set("kind", sched::kind_name(row.route->spec.kind));
    entry.set("lanes", static_cast<std::uint64_t>(row.route->spec.lanes));
    entry.set("status", row.status);
    entry.set("waves", row.waves);
    entry.set("backend", static_cast<std::uint64_t>(row.backend));
    if (row.placed_epoch != 0) entry.set("epoch", row.placed_epoch);
    if (row.failovers != 0) entry.set("failovers", row.failovers);
    jobs.push_back(std::move(entry));
  }
  Json response = make_ok();
  response.set("jobs", std::move(jobs));
  response.set("cluster", true);
  return response;
}

Json Forwarder::handle_stats() {
  Json backends = Json::array();
  Json pool = Json::object();
  std::size_t backends_up = 0;
  std::size_t members = 0;
  const std::uint64_t now_ns = obs::Tracer::now_ns();
  {
    std::lock_guard lock(state_mutex_);
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      const BackendState& backend = backends_[i];
      Json entry = Json::object();
      entry.set("backend", static_cast<std::uint64_t>(i));
      entry.set("address", backend_configs_[i].address);
      entry.set("port",
                static_cast<std::uint64_t>(backend_configs_[i].port));
      entry.set("reachable", backend.target.reachable);
      entry.set("polls", backend.polls);
      if (backend.removed) {
        entry.set("removed", true);
        backends.push_back(std::move(entry));
        continue;
      }
      ++members;
      // Additive: membership identity + fence history per backend.
      if (!backend.instance_id.empty()) {
        entry.set("instance_id", backend.instance_id);
        entry.set("epoch", backend.epoch);
      }
      if (backend.rejoins != 0) entry.set("rejoins", backend.rejoins);
      if (backend.fences != 0) entry.set("fences", backend.fences);
      if (!backend.last_fence.empty()) {
        entry.set("last_fence", backend.last_fence);
      }
      // Additive: how old the placement/liveness snapshot is.
      if (backend.last_good_poll_ns != 0) {
        entry.set("poll_age_ms",
                  static_cast<std::uint64_t>(
                      (now_ns - backend.last_good_poll_ns) / 1000000));
      }
      if (backend.target.reachable) ++backends_up;
      if (backend.pool_json.is_object()) {
        for (const char* field : kPoolFields) {
          entry.set(field, backend.pool_json.get_number(field, 0));
          if (backend.target.reachable) {
            sum_field(pool, backend.pool_json, field);
          }
        }
      }
      backends.push_back(std::move(entry));
    }
  }
  const sched::PlacementPolicy::Stats placement_stats = placement_.stats();
  Json placement = Json::object();
  placement.set("backends", static_cast<std::uint64_t>(members));
  placement.set("placed", placement_stats.placed);
  placement.set("affinity_hits", placement_stats.affinity_hits);
  placement.set("spills", placement_stats.spills);

  const ForwarderStats stats = forwarder_stats();
  Json fwd = Json::object();
  fwd.set("protocol", kProtocolVersion);
  fwd.set("version", kVersion);
  fwd.set("submitted", stats.submitted);
  fwd.set("rejected", stats.rejected);
  fwd.set("failovers", stats.failovers);
  fwd.set("failover_resumed", stats.failover_resumed);
  fwd.set("fences", stats.fences);
  fwd.set("rejoins", stats.rejoins);
  fwd.set("shed", stats.shed);
  fwd.set("routes", static_cast<std::uint64_t>(stats.routes));
  fwd.set("backends_up", static_cast<std::uint64_t>(backends_up));
  fwd.set("draining", stats.draining);

  Json cluster = Json::object();
  cluster.set("backends", std::move(backends));

  Json response = make_ok();
  response.set("role", "forwarder");
  response.set("pool", std::move(pool));  // aggregate, generic tooling
  response.set("placement", std::move(placement));
  response.set("forwarder", std::move(fwd));
  response.set("cluster", std::move(cluster));
  return response;
}

Json Forwarder::handle_health() {
  Json backends = Json::array();
  double healthy = 0;
  double quarantined = 0;
  std::size_t unreachable = 0;
  std::size_t stale = 0;
  const std::uint64_t now_ns = obs::Tracer::now_ns();
  // Reachable but last GOOD poll older than 2x the poll cadence: the
  // placement snapshot is suspect even though the backend answers. Stale
  // is a warning, down is a failure — the health op separates them.
  const std::uint64_t stale_after_ms =
      2 * static_cast<std::uint64_t>(config_.poll_ms);
  struct Probe {
    std::size_t index = 0;
    BackendConfig endpoint;
    bool reachable = false;
    bool removed = false;
    std::uint64_t last_good_ns = 0;
    std::uint64_t epoch = 0;
    std::string instance_id;
    std::string last_fence;
  };
  std::vector<Probe> probes;
  {
    std::lock_guard lock(state_mutex_);
    probes.reserve(backends_.size());
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      Probe probe;
      probe.index = i;
      probe.endpoint = backend_configs_[i];
      probe.reachable = backends_[i].target.reachable;
      probe.removed = backends_[i].removed;
      probe.last_good_ns = backends_[i].last_good_poll_ns;
      probe.epoch = backends_[i].epoch;
      probe.instance_id = backends_[i].instance_id;
      probe.last_fence = backends_[i].last_fence;
      probes.push_back(std::move(probe));
    }
  }
  for (const Probe& probe : probes) {
    bool reachable = probe.reachable;
    Json entry = Json::object();
    entry.set("backend", static_cast<std::uint64_t>(probe.index));
    entry.set("address", probe.endpoint.address);
    entry.set("port", static_cast<std::uint64_t>(probe.endpoint.port));
    if (probe.removed) {
      // Tombstones are membership history, not failures: visible but
      // never probed and not counted unreachable.
      entry.set("removed", true);
      entry.set("reachable", false);
      backends.push_back(std::move(entry));
      continue;
    }
    if (probe.epoch != 0) {
      entry.set("epoch", probe.epoch);
      entry.set("instance_id", probe.instance_id);
    }
    if (!probe.last_fence.empty()) {
      entry.set("last_fence", probe.last_fence);
    }
    std::uint64_t poll_age_ms = 0;
    const std::uint64_t last_good_ns = probe.last_good_ns;
    if (last_good_ns != 0) {
      poll_age_ms = (now_ns - last_good_ns) / 1000000;
      entry.set("poll_age_ms", poll_age_ms);
    }
    if (reachable) {
      try {
        Client client = quick_client(probe.index);
        Json request = Json::object();
        request.set("op", "health");
        const Json health = client.request(request);
        entry.set("reachable", true);
        entry.set("healthy", health.get_number("healthy", 0));
        entry.set("quarantined", health.get_number("quarantined", 0));
        entry.set("preempted", health.get_number("preempted", 0));
        entry.set("migrations", health.get_number("migrations", 0));
        healthy += health.get_number("healthy", 0);
        quarantined += health.get_number("quarantined", 0);
        const bool is_stale =
            last_good_ns == 0 || poll_age_ms > stale_after_ms;
        entry.set("stale", is_stale);
        if (is_stale) ++stale;
      } catch (const std::exception&) {
        reachable = false;
      }
    }
    if (!reachable) {
      entry.set("reachable", false);
      ++unreachable;
    }
    backends.push_back(std::move(entry));
  }
  Json response = make_ok();
  response.set("cluster", true);
  response.set("backends", std::move(backends));
  response.set("healthy", healthy);
  response.set("quarantined", quarantined);
  response.set("unreachable", static_cast<std::uint64_t>(unreachable));
  response.set("stale", static_cast<std::uint64_t>(stale));
  return response;
}

Json Forwarder::handle_backend(const Json& request) {
  const std::string action = request.get_string("action", "list");
  if (action == "list") {
    Json backends = Json::array();
    std::lock_guard lock(state_mutex_);
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      const BackendState& backend = backends_[i];
      Json entry = Json::object();
      entry.set("backend", static_cast<std::uint64_t>(i));
      entry.set("address", backend_configs_[i].address);
      entry.set("port",
                static_cast<std::uint64_t>(backend_configs_[i].port));
      entry.set("reachable", backend.target.reachable);
      entry.set("removed", backend.removed);
      if (!backend.instance_id.empty()) {
        entry.set("instance_id", backend.instance_id);
        entry.set("epoch", backend.epoch);
      }
      entry.set("rejoins", backend.rejoins);
      entry.set("fences", backend.fences);
      if (!backend.last_fence.empty()) {
        entry.set("last_fence", backend.last_fence);
      }
      backends.push_back(std::move(entry));
    }
    Json response = make_ok();
    response.set("backends", std::move(backends));
    return response;
  }
  if (action == "add") {
    const double port_field = request.get_number("port", 0);
    if (!json_number_is_exact_int(port_field) || port_field <= 0 ||
        port_field > 65535) {
      return make_error("backend add needs a 'port' in [1, 65535]",
                        "bad_request");
    }
    BackendConfig endpoint;
    endpoint.address = request.get_string("address", "127.0.0.1");
    endpoint.port = static_cast<std::uint16_t>(port_field);
    endpoint.journal_dir = request.get_string("journal", "");
    std::size_t index;
    {
      std::lock_guard lock(state_mutex_);
      index = backends_.size();
      backend_configs_.push_back(endpoint);
      backends_.emplace_back();
    }
    // Immediate poll: the new member is placeable (or visibly failing)
    // before the add returns, not one poll interval later.
    poll_backend(index);
    Json response = make_ok();
    response.set("backend", static_cast<std::uint64_t>(index));
    {
      std::lock_guard lock(state_mutex_);
      response.set("reachable", backends_[index].target.reachable);
      if (backends_[index].epoch != 0) {
        response.set("epoch", backends_[index].epoch);
      }
    }
    return response;
  }
  if (action == "remove") {
    const double index_field = request.get_number("backend", -1);
    if (!json_number_is_exact_int(index_field) || index_field < 0) {
      return make_error("backend remove needs a 'backend' index",
                        "bad_request");
    }
    const std::size_t index = static_cast<std::size_t>(index_field);
    std::vector<std::shared_ptr<Route>> orphans;
    {
      std::lock_guard lock(state_mutex_);
      if (index >= backends_.size()) {
        return make_error("no backend " + std::to_string(index),
                          "bad_request");
      }
      if (backends_[index].removed) {
        Json response = make_ok();
        response.set("backend", static_cast<std::uint64_t>(index));
        response.set("removed", true);
        return response;
      }
      std::size_t members = 0;
      for (const BackendState& backend : backends_) {
        if (!backend.removed) ++members;
      }
      if (members <= 1) {
        return make_error("cannot remove the last backend", "bad_request");
      }
      orphans = take_down_locked(index);
      backends_[index].removed = true;
      // A tombstone never revives, so there is nothing to fence later.
      backends_[index].fence_names.clear();
    }
    // Evacuate: the removed member's unfinished routes fail over to the
    // survivors exactly like a death would move them.
    for (const std::shared_ptr<Route>& route : orphans) {
      failover_route(route, index);
    }
    Json response = make_ok();
    response.set("backend", static_cast<std::uint64_t>(index));
    response.set("removed", true);
    response.set("evacuated", static_cast<std::uint64_t>(orphans.size()));
    return response;
  }
  return make_error(
      "unknown backend action '" + action + "' (add|remove|list)",
      "bad_request");
}

std::optional<Json> Forwarder::handle_watch(Session& session,
                                            const Json& request) {
  std::string error;
  const std::shared_ptr<Route> route = find_route(request, error);
  if (route == nullptr) return make_error(error, "unknown_job");
  const double every_field = request.get_number("every", 1);
  const std::uint64_t every =
      json_number_is_exact_int(every_field) && every_field >= 1
          ? static_cast<std::uint64_t>(every_field)
          : 1;
  const std::shared_ptr<LineChannel> channel = session.channel;
  std::uint64_t front_id;
  {
    std::lock_guard lock(state_mutex_);
    front_id = route->id;
  }
  Json ack = make_ok();
  ack.set("job", front_id);
  {
    std::lock_guard lock(state_mutex_);
    ack.set("watching", route->spec.name);
  }
  if (const Json* id = request.get("id")) ack.set("id", *id);
  bool acked = false;
  const auto send_ack = [&] {
    if (acked) return;
    acked = true;
    static_cast<void>(channel->write_line(ack.dump()));
  };
  for (;;) {
    std::size_t backend;
    std::uint64_t backend_job;
    std::uint64_t generation;
    {
      std::lock_guard lock(state_mutex_);
      if (route->finished) {
        send_ack();
        Json frame = Json::object();
        frame.set("event", "done");
        frame.set("job", front_id);
        frame.set("status", route->final_status);
        frame.set("waves", static_cast<std::uint64_t>(0));
        static_cast<void>(channel->write_line(frame.dump()));
        return std::nullopt;
      }
      backend = route->backend;
      backend_job = route->backend_job;
      generation = route->generation;
    }
    std::string final_status;
    bool got = false;
    try {
      // Unbounded IO, same as result: the stream follows the mission.
      const BackendConfig target = backend_config(backend);
      Client client(target.port, target.address, /*io_timeout_ms=*/0);
      final_status = client.watch(
          backend_job,
          [&](std::uint64_t waves) {
            send_ack();  // subscribed southbound -> northbound is live
            Json frame = Json::object();
            frame.set("event", "progress");
            frame.set("job", front_id);
            frame.set("waves", waves);
            static_cast<void>(channel->write_line(frame.dump()));
          },
          every, [&] { send_ack(); });
      got = true;
    } catch (const std::exception&) {
      got = false;
    }
    std::unique_lock lock(state_mutex_);
    if (route->generation != generation) continue;  // moved: re-subscribe
    if (route->finished) continue;  // serve the terminal frame above
    if (got) {
      release_route_locked(*route);  // watch ended terminal southbound
      lock.unlock();
      send_ack();
      Json frame = Json::object();
      frame.set("event", "done");
      frame.set("job", front_id);
      frame.set("status", final_status);
      static_cast<void>(channel->write_line(frame.dump()));
      return std::nullopt;
    }
    state_cv_.wait_for(lock, std::chrono::milliseconds(250), [&] {
      return route->finished || route->generation != generation ||
             stopping_.load(std::memory_order_relaxed);
    });
    if (stopping_.load(std::memory_order_relaxed) && !route->finished &&
        route->generation == generation) {
      return make_error("forwarder stopping", "backend_down");
    }
  }
}

Json Forwarder::handle_drain(const Json& request) {
  drain();
  if (request.get_bool("wait", false)) wait_routes_idle();
  Json response = make_ok();
  response.set("draining", true);
  return response;
}

void Forwarder::wait_routes_idle() {
  // Wait until every route is terminal on its backend (a forwarder keeps
  // no pool of its own; "drained" means the backends are).
  for (;;) {
    std::vector<std::pair<std::size_t, std::uint64_t>> live;
    {
      std::lock_guard lock(state_mutex_);
      for (const auto& [id, route] : routes_) {
        if (!route->finished) {
          live.emplace_back(route->backend, route->backend_job);
        }
      }
    }
    bool any_running = false;
    for (const auto& [backend, backend_job] : live) {
      try {
        Client client = quick_client(backend);
        const std::string status =
            client.status(backend_job).get_string("status", "");
        if (status == "queued" || status == "running" ||
            status == "preempted") {
          any_running = true;
          break;
        }
      } catch (const std::exception&) {
        // Unreachable backend: the poller will fail the route over or
        // finish it; keep waiting.
        any_running = true;
        break;
      }
    }
    if (!any_running || stopping_.load(std::memory_order_relaxed)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

void Forwarder::wait_drained() {
  {
    std::unique_lock lock(state_mutex_);
    state_cv_.wait(lock, [this] {
      return draining_.load(std::memory_order_relaxed) ||
             stopping_.load(std::memory_order_relaxed);
    });
  }
  wait_routes_idle();
}

}  // namespace ehw::svc
