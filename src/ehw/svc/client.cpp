#include "ehw/svc/client.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "ehw/obs/trace.hpp"

namespace ehw::svc {
namespace {

[[noreturn]] void connection_lost() {
  throw std::runtime_error("mission service connection lost");
}

Json parse_frame(const std::string& line) {
  Json frame = Json::parse(line);
  if (!frame.is_object()) {
    throw std::runtime_error("mission service sent a non-object frame");
  }
  return frame;
}

/// Timeouts must land on the raw socket before LineChannel takes
/// ownership — the channel has no fd accessor by design.
Socket connect_with_timeout(const std::string& address, std::uint16_t port,
                            int io_timeout_ms) {
  Socket socket = Socket::connect_to(address, port);
  if (io_timeout_ms > 0) {
    socket.set_recv_timeout(io_timeout_ms);
    socket.set_send_timeout(io_timeout_ms);
  }
  return socket;
}

}  // namespace

Client::Client(std::uint16_t port, const std::string& address,
               int io_timeout_ms)
    : channel_(connect_with_timeout(address, port, io_timeout_ms)) {
  std::string line;
  if (!channel_.read_line(line)) connection_lost();
  const Json greeting = parse_frame(line);
  if (greeting.get_string("event", "") != "hello" ||
      greeting.get_string("service", "") != kServiceName) {
    throw std::runtime_error("peer is not a mission service");
  }
  const double protocol = greeting.get_number("protocol", -1);
  if (protocol != static_cast<double>(kProtocolVersion)) {
    throw std::runtime_error(
        "mission service speaks protocol " + std::to_string(protocol) +
        ", this client speaks " + std::to_string(kProtocolVersion));
  }
  server_version_ = greeting.get_string("version", "?");
  server_instance_id_ = greeting.get_string("instance_id", "");
  const double epoch = greeting.get_number("epoch", 0);
  if (epoch >= 0 && json_number_is_exact_int(epoch)) {
    server_epoch_ = static_cast<std::uint64_t>(epoch);
  }

  Json hello = Json::object();
  hello.set("op", "hello");
  hello.set("protocol", kProtocolVersion);
  const Json response = roundtrip(hello);
  if (!response.get_bool("ok", false)) {
    throw std::runtime_error("mission service rejected handshake: " +
                             response.get_string("error", "unknown error"));
  }
}

Json Client::roundtrip(const Json& request) {
  EHW_TRACE_SPAN("rpc_roundtrip");
  if (!channel_.write_line(request.dump())) connection_lost();
  std::string line;
  while (channel_.read_line(line)) {
    Json frame = parse_frame(line);
    if (frame.get("event") != nullptr) continue;  // stray event frame
    return frame;
  }
  connection_lost();
}

Json Client::request(const Json& request) { return roundtrip(request); }

Client::Submitted Client::submit(const sched::MissionSpec& spec) {
  Json request = Json::object();
  request.set("op", "submit");
  request.set("spec", spec_to_json(spec));
  const Json response = roundtrip(request);
  Submitted submitted;
  submitted.ok = response.get_bool("ok", false);
  if (submitted.ok) {
    submitted.job =
        static_cast<std::uint64_t>(response.get_number("job", 0));
  } else {
    submitted.error = response.get_string("error", "unknown error");
    submitted.code = response.get_string("code", "");
    submitted.retry_after_ms =
        static_cast<std::uint64_t>(response.get_number("retry_after_ms", 0));
  }
  return submitted;
}

Client::BatchSubmitted Client::submit_batch(
    const std::vector<sched::MissionSpec>& specs) {
  Json payload = Json::array();
  for (const sched::MissionSpec& spec : specs) {
    payload.push_back(spec_to_json(spec));
  }
  Json request = Json::object();
  request.set("op", "submit_batch");
  request.set("specs", std::move(payload));
  const Json response = roundtrip(request);
  BatchSubmitted submitted;
  submitted.ok = response.get_bool("ok", false);
  if (!submitted.ok) {
    submitted.error = response.get_string("error", "unknown error");
    submitted.code = response.get_string("code", "");
    return submitted;
  }
  const Json* jobs = response.get("jobs");
  if (jobs != nullptr && jobs->is_array()) {
    submitted.jobs.reserve(jobs->as_array().size());
    for (const Json& entry : jobs->as_array()) {
      submitted.jobs.push_back(
          static_cast<std::uint64_t>(entry.get_number("job", 0)));
    }
  }
  // Callers index jobs[i] per spec; never hand them a short array from a
  // malformed ok-response.
  if (submitted.jobs.size() != specs.size()) {
    submitted.ok = false;
    submitted.error = "server acknowledged " +
                      std::to_string(submitted.jobs.size()) + " of " +
                      std::to_string(specs.size()) + " batch specs";
    submitted.code = "bad_response";
    submitted.jobs.clear();
  }
  return submitted;
}

Json Client::job_op(const char* op, std::uint64_t job) {
  Json request = Json::object();
  request.set("op", op);
  request.set("job", job);
  return roundtrip(request);
}

Json Client::named_op(const char* op, const std::string& name) {
  Json request = Json::object();
  request.set("op", op);
  request.set("job", name);
  return roundtrip(request);
}

Json Client::status(std::uint64_t job) { return job_op("status", job); }

Json Client::status_by_name(const std::string& name) {
  return named_op("status", name);
}

Json Client::result(std::uint64_t job) { return job_op("result", job); }

Json Client::result_by_name(const std::string& name) {
  return named_op("result", name);
}

bool Client::cancel(std::uint64_t job) {
  return job_op("cancel", job).get_bool("ok", false);
}

Json Client::list() {
  Json request = Json::object();
  request.set("op", "list");
  return roundtrip(request);
}

Json Client::stats() {
  Json request = Json::object();
  request.set("op", "stats");
  return roundtrip(request);
}

Json Client::drain(bool wait) {
  Json request = Json::object();
  request.set("op", "drain");
  request.set("wait", wait);
  return roundtrip(request);
}

std::string Client::watch(
    std::uint64_t job,
    const std::function<void(std::uint64_t waves)>& on_progress,
    std::uint64_t every, const std::function<void()>& on_subscribed) {
  Json request = Json::object();
  request.set("op", "watch");
  request.set("job", job);
  request.set("every", every);
  return watch_request(std::move(request), on_progress, on_subscribed);
}

std::string Client::watch_by_name(
    const std::string& name,
    const std::function<void(std::uint64_t waves)>& on_progress,
    std::uint64_t every, const std::function<void()>& on_subscribed) {
  Json request = Json::object();
  request.set("op", "watch");
  request.set("job", name);
  request.set("every", every);
  return watch_request(std::move(request), on_progress, on_subscribed);
}

std::string Client::watch_request(
    Json request, const std::function<void(std::uint64_t waves)>& on_progress,
    const std::function<void()>& on_subscribed) {
  if (!channel_.write_line(request.dump())) connection_lost();
  // The server subscribes before acking, so event frames may arrive
  // ahead of the ok-response; handle both in any order.
  bool acked = false;
  bool finished = false;
  std::string final_status;
  std::string line;
  while (channel_.read_line(line)) {
    const Json frame = parse_frame(line);
    if (frame.get("event") != nullptr) {
      const std::string event = frame.get_string("event", "");
      if (event == "progress" && on_progress) {
        on_progress(
            static_cast<std::uint64_t>(frame.get_number("waves", 0)));
      } else if (event == "done") {
        final_status = frame.get_string("status", "?");
        finished = true;
        if (acked) return final_status;
      }
      continue;
    }
    if (!frame.get_bool("ok", false)) {
      throw std::runtime_error("watch rejected: " +
                               frame.get_string("error", "unknown error"));
    }
    acked = true;
    if (on_subscribed) on_subscribed();
    if (finished) return final_status;
  }
  connection_lost();
}

Json with_retry(std::uint16_t port, const std::string& address,
                const RetryPolicy& policy,
                const std::function<Json(Client&)>& op) {
  const int attempts = policy.retries >= 0 ? policy.retries + 1 : 1;
  int delay_ms = policy.backoff_ms > 0 ? policy.backoff_ms : 100;
  std::string last_error = "no attempt made";
  // Serviced-but-rejected queue_full responses with a retry_after_ms
  // hint wait out the hint and try again: admission was refused, so
  // nothing ran and the retry is as idempotent as a reconnect. The last
  // attempt's rejection is returned verbatim so callers see the code.
  std::uint64_t hint_ms = 0;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt != 0) {
      const std::uint64_t wait_ms =
          std::max<std::uint64_t>(hint_ms, static_cast<std::uint64_t>(delay_ms));
      std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
      if (delay_ms < 60'000) delay_ms *= 2;  // cap the exponential climb
    }
    hint_ms = 0;
    try {
      Client client(port, address, policy.io_timeout_ms);
      Json response = op(client);
      if (!response.get_bool("ok", false) &&
          response.get_string("code", "") == "queue_full" &&
          attempt + 1 < attempts) {
        const double hint = response.get_number("retry_after_ms", 0);
        if (hint > 0) {
          hint_ms = static_cast<std::uint64_t>(hint);
          last_error = response.get_string("error", "queue_full");
          continue;
        }
      }
      return response;
    } catch (const std::exception& e) {
      last_error = e.what();
    }
  }
  throw std::runtime_error("mission service unreachable after " +
                           std::to_string(attempts) +
                           " attempt(s): " + last_error);
}

IdempotentSubmit submit_idempotent(std::uint16_t port,
                                   const std::string& address,
                                   const sched::MissionSpec& spec,
                                   const RetryPolicy& policy) {
  IdempotentSubmit out;
  try {
    const Json response =
        with_retry(port, address, policy, [&spec](Client& client) -> Json {
          // Probe first: if any incarnation of the daemon (including one
          // that just restarted and replayed its journal) already knows
          // this mission name, the earlier submit landed — a second
          // submit would double-run it.
          Json known = client.status_by_name(spec.name);
          if (known.get_bool("ok", false)) {
            known.set("already_known", true);
            return known;
          }
          Json request = Json::object();
          request.set("op", "submit");
          request.set("spec", spec_to_json(spec));
          return client.request(request);
        });
    out.ok = response.get_bool("ok", false);
    out.already_known = response.get_bool("already_known", false);
    if (out.ok) {
      out.job = static_cast<std::uint64_t>(response.get_number("job", 0));
    } else {
      out.error = response.get_string("error", "unknown error");
      out.code = response.get_string("code", "");
    }
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
    out.code = "unreachable";
  }
  return out;
}

std::string watch_mission(
    std::uint16_t port, const std::string& address, const std::string& name,
    const RetryPolicy& policy,
    const std::function<void(std::uint64_t waves)>& on_progress,
    std::uint64_t every) {
  const int attempts = policy.retries >= 0 ? policy.retries + 1 : 1;
  int remaining = attempts;
  int delay_ms = policy.backoff_ms > 0 ? policy.backoff_ms : 100;
  std::string last_error = "no attempt made";
  for (;;) {
    bool subscribed = false;
    try {
      Client client(port, address, policy.io_timeout_ms);
      return client.watch_by_name(name, on_progress, every,
                                  [&subscribed] { subscribed = true; });
    } catch (const std::exception& e) {
      last_error = e.what();
    }
    if (subscribed) {
      // The daemon was alive and streaming before the drop — this is a
      // restart/failover window, not a dead endpoint. Refill the budget:
      // retries bound consecutive failed reconnects, not mission length.
      remaining = attempts;
      delay_ms = policy.backoff_ms > 0 ? policy.backoff_ms : 100;
    } else {
      --remaining;
    }
    if (remaining <= 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    if (delay_ms < 60'000) delay_ms *= 2;
  }
  throw std::runtime_error("watch '" + name + "' lost after " +
                           std::to_string(attempts) +
                           " attempt(s): " + last_error);
}

}  // namespace ehw::svc
