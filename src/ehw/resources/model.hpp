#pragma once
// Resource-utilization model, carrying the paper's measured numbers
// (§VI.A) so the Fig. 10 bench can regenerate the utilization table:
//   * static control (ACB addressing/management): 733 slices,
//     1365 FFs, 1817 LUTs;
//   * each ACB: 754 slices, 1642 FFs, 1528 LUTs;
//   * each PE: 2 CLB columns x 5 CLBs (a quarter clock region);
//   * each 4x4 array: 8 CLB columns of one clock region = 160 CLBs;
//   * per-PE reconfiguration time: 67.53 us at 100 MHz ICAP.
// A Virtex-5 CLB holds 2 slices; each slice 4 LUTs + 4 FFs — used to
// translate CLB footprints into slice budgets for the totals.

#include <cstdint>
#include <string>
#include <vector>

#include "ehw/fpga/geometry.hpp"

namespace ehw::resources {

struct ResourceVector {
  std::uint64_t slices = 0;
  std::uint64_t ffs = 0;
  std::uint64_t luts = 0;

  ResourceVector& operator+=(const ResourceVector& o) noexcept {
    slices += o.slices;
    ffs += o.ffs;
    luts += o.luts;
    return *this;
  }
  friend ResourceVector operator+(ResourceVector a,
                                  const ResourceVector& b) noexcept {
    return a += b;
  }
  friend ResourceVector operator*(ResourceVector v, std::uint64_t n) noexcept {
    v.slices *= n;
    v.ffs *= n;
    v.luts *= n;
    return v;
  }
};

/// Paper-measured constants (§VI.A).
inline constexpr ResourceVector kStaticControl{733, 1365, 1817};
inline constexpr ResourceVector kPerAcb{754, 1642, 1528};
inline constexpr std::size_t kClbsPerPe = 10;      // 2 cols x 5 CLBs
inline constexpr std::size_t kClbsPerArray = 160;  // 8 CLB cols x 20 rows
inline constexpr std::size_t kSlicesPerClb = 2;    // Virtex-5
inline constexpr double kPeReconfigMicros = 67.53;

/// Device envelope of the paper's part (Virtex-5 LX110T).
inline constexpr std::uint64_t kDeviceSlices = 17280;

struct ModuleUsage {
  std::string module;
  std::size_t instances = 1;
  ResourceVector each;
  [[nodiscard]] ResourceVector total() const { return each * instances; }
};

struct UtilizationReport {
  std::vector<ModuleUsage> modules;
  ResourceVector total;
  double device_slice_percent = 0.0;
};

/// Builds the utilization report for a platform with `num_arrays` stacked
/// ACB+array modules of the given shape.
[[nodiscard]] UtilizationReport utilization(std::size_t num_arrays,
                                            fpga::ArrayShape shape = {4, 4});

/// Reconfiguration-cost summary for the report.
struct ReconfigCosts {
  double per_pe_us = kPeReconfigMicros;
  double full_array_us = 0.0;  // rewriting every PE of one array
  double full_platform_us = 0.0;
};
[[nodiscard]] ReconfigCosts reconfig_costs(std::size_t num_arrays,
                                           fpga::ArrayShape shape = {4, 4});

}  // namespace ehw::resources
