#pragma once
// ASCII floorplan renderer for Fig. 10: the vertical stack of ACB+array
// modules next to the static region (MicroBlaze, reconfiguration engine,
// memory controllers), with each array showing its 2-CLB-column-wide PE
// slots across a clock region.

#include <iosfwd>
#include <string>

#include "ehw/fpga/geometry.hpp"

namespace ehw::resources {

/// Renders the floorplan of `num_arrays` stacked stages.
void render_floorplan(std::ostream& os, std::size_t num_arrays,
                      fpga::ArrayShape shape = {4, 4});

[[nodiscard]] std::string floorplan_string(std::size_t num_arrays,
                                           fpga::ArrayShape shape = {4, 4});

}  // namespace ehw::resources
