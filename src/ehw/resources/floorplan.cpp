#include "ehw/resources/floorplan.hpp"

#include <ostream>
#include <sstream>

namespace ehw::resources {

void render_floorplan(std::ostream& os, std::size_t num_arrays,
                      fpga::ArrayShape shape) {
  const std::string static_col = "  STATIC REGION   ";
  os << "+------------------+--------------------------------------+\n";
  os << "|" << static_col << "|  reconfigurable EHW region (stacked) |\n";
  os << "+------------------+--------------------------------------+\n";
  for (std::size_t a = 0; a < num_arrays; ++a) {
    // ACB strip.
    os << "| ";
    if (a == 0) {
      os << "MicroBlaze       ";
    } else if (a == 1) {
      os << "Reconf. engine   ";
    } else if (a == 2) {
      os << "DDR2 / PLB bus   ";
    } else {
      os << "                 ";
    }
    os << "|  ACB" << a << "  ctrl | FIFOs | fitness unit   |\n";
    // Array rows: each PE cell drawn as [fn].
    for (std::size_t r = 0; r < shape.rows; ++r) {
      os << "|                  |  ";
      for (std::size_t c = 0; c < shape.cols; ++c) {
        os << "[PE" << r << c << "]";
      }
      // Pad to the box edge for the common 4x4 case.
      if (shape.cols == 4) os << "  <- clock region " << a;
      os << '\n';
    }
    os << "+------------------+--------------------------------------+\n";
  }
  os << "  each PE: 2 CLB columns x 5 CLBs (1/4 clock region height)\n";
  os << "  each array: " << shape.rows << 'x' << shape.cols
     << " PEs = " << (shape.rows == 4 && shape.cols == 4
                          ? 160
                          : shape.cell_count() * 10)
     << " CLBs across one clock region\n";
}

std::string floorplan_string(std::size_t num_arrays, fpga::ArrayShape shape) {
  std::ostringstream os;
  render_floorplan(os, num_arrays, shape);
  return os.str();
}

}  // namespace ehw::resources
