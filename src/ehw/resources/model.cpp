#include "ehw/resources/model.hpp"

namespace ehw::resources {

UtilizationReport utilization(std::size_t num_arrays, fpga::ArrayShape shape) {
  UtilizationReport report;

  report.modules.push_back(
      ModuleUsage{"static control (ACB addressing)", 1, kStaticControl});
  report.modules.push_back(ModuleUsage{"ACB (ctrl+FIFOs+fitness)",
                                       num_arrays, kPerAcb});

  // Array fabric: CLB footprint converted to slices. A 4x4 array occupies
  // 160 CLBs (paper); other shapes scale by PE footprint.
  const std::size_t clbs_per_array =
      shape.rows == 4 && shape.cols == 4
          ? kClbsPerArray
          : shape.cell_count() * kClbsPerPe;
  const ResourceVector array_each{
      clbs_per_array * kSlicesPerClb,
      clbs_per_array * kSlicesPerClb * 4,  // 4 FFs per slice
      clbs_per_array * kSlicesPerClb * 4,  // 4 LUTs per slice
  };
  report.modules.push_back(
      ModuleUsage{"processing array (reconfigurable region)", num_arrays,
                  array_each});

  for (const auto& m : report.modules) report.total += m.total();
  report.device_slice_percent =
      100.0 * static_cast<double>(report.total.slices) /
      static_cast<double>(kDeviceSlices);
  return report;
}

ReconfigCosts reconfig_costs(std::size_t num_arrays, fpga::ArrayShape shape) {
  ReconfigCosts costs;
  costs.full_array_us =
      kPeReconfigMicros * static_cast<double>(shape.cell_count());
  costs.full_platform_us =
      costs.full_array_us * static_cast<double>(num_arrays);
  return costs;
}

}  // namespace ehw::resources
