#include "ehw/analysis/dependability.hpp"

#include <algorithm>

#include "ehw/common/assert.hpp"

namespace ehw::analysis {

DependabilityReport estimate_dependability(const DependabilityInputs& in) {
  EHW_REQUIRE(in.config_bits > 0, "config_bits must be positive");
  EHW_REQUIRE(in.avf >= 0.0 && in.avf <= 1.0, "avf must be in [0,1]");
  EHW_REQUIRE(in.permanent_fraction >= 0.0 && in.permanent_fraction <= 1.0,
              "permanent_fraction must be in [0,1]");

  DependabilityReport report;
  const double lambda =
      in.upsets_per_bit_second * in.config_bits * in.avf;  // per second
  report.observable_rate = lambda;
  if (lambda <= 0.0) {
    report.simplex_mtbf = report.tmr_mtbf = 1e300;
    report.simplex_availability = report.tmr_availability = 1.0;
    return report;
  }

  const double scrub_s = sim::to_seconds(in.scrub_period);
  const double recovery_s = sim::to_seconds(in.recovery_time);

  // Simplex: every observable upset corrupts the output until healed —
  // transient faults for half a scrub period on average, permanent faults
  // for the full recovery evolution.
  const double exposure =
      (1.0 - in.permanent_fraction) * scrub_s / 2.0 +
      in.permanent_fraction * recovery_s;
  report.simplex_mtbf = 1.0 / lambda;
  report.simplex_availability =
      std::max(0.0, 1.0 - std::min(1.0, lambda * exposure));

  // TMR: one faulty array is masked by the voter. The output only
  // corrupts when a second array faults while the first is still exposed:
  // rate ~ (3 lambda_a)(2 lambda_a x exposure_a) for per-array rates.
  const double lambda_array = lambda / 3.0;
  const double exposure_array = exposure;  // same healing machinery
  const double double_fault_rate =
      3.0 * lambda_array * (2.0 * lambda_array * exposure_array);
  report.tmr_mtbf = double_fault_rate > 0 ? 1.0 / double_fault_rate : 1e300;
  report.tmr_availability =
      std::max(0.0, 1.0 - std::min(1.0, double_fault_rate * exposure_array));
  return report;
}

}  // namespace ehw::analysis
