#pragma once
// Systematic PE-level fault campaign (§VI.D: "Using a hardware based
// fault analysis allows offering a systematic fault analysis, by injecting
// faults in every position in every array of the architecture") and the
// criticality assessment the paper lists as future work ("after analyzing
// the criticality of all elements in the system, an overall fault
// resistance assessment ... needs to be performed").
//
// For every PE position of a deployed circuit the campaign:
//   1. injects the dummy-PE fault (the paper's PE-level model),
//   2. measures the fitness degradation on a fixed workload,
//   3. optionally runs a recovery evolution (re-evolution or imitation)
//      and records the residual,
//   4. removes the fault and restores the deployed circuit.
// The result is a criticality map: which cells the current circuit can
// lose silently, which degrade it, and which are mission-critical.

#include <cstdint>
#include <vector>

#include "ehw/evo/es.hpp"
#include "ehw/platform/platform.hpp"

namespace ehw::analysis {

struct CellFaultResult {
  std::size_t row = 0;
  std::size_t col = 0;
  /// Fitness of the deployed circuit before any fault.
  Fitness healthy_fitness = 0;
  /// Fitness with the dummy-PE fault in place.
  Fitness faulty_fitness = 0;
  /// Fitness after the recovery evolution (kInvalidFitness if disabled).
  Fitness recovered_fitness = kInvalidFitness;
  /// True when the fault did not change the output at all (dead cell for
  /// this circuit: either structurally unobservable or logically masked).
  [[nodiscard]] bool masked() const noexcept {
    return faulty_fitness == healthy_fitness;
  }
  /// Relative degradation (0 = masked).
  [[nodiscard]] double degradation() const noexcept {
    if (faulty_fitness <= healthy_fitness) return 0.0;
    return static_cast<double>(faulty_fitness - healthy_fitness);
  }
};

struct CampaignConfig {
  /// Run a recovery evolution per faulty cell and record the residual
  /// (slower; enables the "supported faults" classification of §V).
  bool run_recovery = false;
  /// ES settings for recovery runs (seeded per cell from this seed).
  evo::EsConfig recovery_es;
  /// A recovered fitness within this factor of healthy counts as a
  /// *supported* fault.
  double supported_factor = 1.10;
};

struct CampaignResult {
  std::size_t array = 0;
  std::vector<CellFaultResult> cells;  // row-major
  /// Cells whose fault never reached the output.
  [[nodiscard]] std::size_t masked_count() const noexcept;
  /// Cells that degraded the output (the complement of masked).
  [[nodiscard]] std::size_t critical_count() const noexcept;
  /// Of the critical cells, how many recovered within supported_factor
  /// (only meaningful when run_recovery was set).
  std::size_t supported_count = 0;
};

/// Runs the campaign on `array` of `platform`, which must already hold the
/// deployed circuit. Fitness is measured as MAE(filter(train), reference).
/// The platform is returned to its pre-campaign state (fault cleared and
/// the deployed circuit reconfigured) after every cell.
[[nodiscard]] CampaignResult run_pe_fault_campaign(
    platform::EvolvablePlatform& platform, std::size_t array,
    const img::Image& train, const img::Image& reference,
    const CampaignConfig& config = {});

}  // namespace ehw::analysis
