#pragma once
// Dependability estimator — the paper's motivation quantified: given an
// SEU arrival rate (orbit-dependent), the measured architectural
// vulnerability (SEU sweep), the scrub period and the measured recovery
// times, estimate availability and mean time between *observable* output
// corruptions for the §IV operating modes. A simple renewal-process model:
//
//   observable upset rate  = raw rate x device bits x AVF
//   exposure (no TMR)      = scrub period / 2 on average per upset
//   exposure (TMR)         = only during overlapping double faults within
//                            a recovery window
//
// All rates are per simulated second; numbers come from the platform's
// own measured constants, not from silicon.

#include <cstddef>

#include "ehw/sim/time.hpp"

namespace ehw::analysis {

struct DependabilityInputs {
  /// Raw upsets per bit per second (e.g. LEO ~1e-10, GEO flare ~1e-7).
  double upsets_per_bit_second = 1e-9;
  /// Configuration bits exposed (geometry.total_words() * 32).
  double config_bits = 0;
  /// Fraction of flips that corrupt the output (from run_seu_sweep).
  double avf = 0.5;
  /// Blind/readback scrub period.
  sim::SimTime scrub_period = sim::milliseconds(10.0);
  /// Measured imitation/re-evolution recovery time for a permanent fault.
  sim::SimTime recovery_time = sim::seconds(1.0);
  /// Fraction of faults that are permanent (LPD) rather than transient.
  double permanent_fraction = 0.01;
};

struct DependabilityReport {
  /// Observable fault arrivals per second.
  double observable_rate = 0;
  /// Simplex (single array): mean seconds between corrupted output frames.
  double simplex_mtbf = 0;
  /// Simplex availability (fraction of time the output is trustworthy).
  double simplex_availability = 0;
  /// TMR: mean seconds between voted-output corruptions (needs a second
  /// fault inside the first one's exposure window).
  double tmr_mtbf = 0;
  double tmr_availability = 0;
};

[[nodiscard]] DependabilityReport estimate_dependability(
    const DependabilityInputs& inputs);

}  // namespace ehw::analysis
