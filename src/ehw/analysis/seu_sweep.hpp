#pragma once
// SEU sensitivity sweep: the "realistic fault model" assessment the paper
// defers to future work. Instead of the PE-level dummy model, this sweep
// flips individual configuration bits (optionally every bit of an array's
// footprint), classifies the effect, and verifies scrub recovery:
//
//   benign     - output unchanged (bit was don't-care for this circuit,
//                e.g. in a dead row or masked logic);
//   corrupting - output changed while the flip persisted;
// and for every flip, whether a slot scrub restored the exact output.
//
// This quantifies the paper's claim that transient faults need scrubbing
// only, and measures the circuit's architectural vulnerability factor
// (AVF = corrupting flips / total flips) per PE slot.

#include <cstdint>
#include <vector>

#include "ehw/platform/platform.hpp"

namespace ehw::analysis {

struct SeuSweepConfig {
  /// Flip every `stride`-th bit of the slot footprint (1 = exhaustive).
  std::size_t bit_stride = 1;
};

struct SlotSensitivity {
  std::size_t row = 0;
  std::size_t col = 0;
  std::size_t flips = 0;
  std::size_t corrupting = 0;
  std::size_t scrub_recovered = 0;  // flips fully healed by a slot scrub
  [[nodiscard]] double avf() const noexcept {
    return flips == 0 ? 0.0
                      : static_cast<double>(corrupting) /
                            static_cast<double>(flips);
  }
};

struct SeuSweepResult {
  std::size_t array = 0;
  std::vector<SlotSensitivity> slots;  // row-major
  [[nodiscard]] std::size_t total_flips() const noexcept;
  [[nodiscard]] std::size_t total_corrupting() const noexcept;
  [[nodiscard]] double overall_avf() const noexcept;
  /// True when every injected flip was healed by scrubbing (the §V
  /// transient-fault guarantee).
  [[nodiscard]] bool all_scrub_recovered() const noexcept;
};

/// Sweeps the array's configuration bits. The platform must hold a
/// deployed circuit; it is left exactly as found (every flip is scrubbed
/// before moving on). Output equality is judged on `probe` frames.
[[nodiscard]] SeuSweepResult run_seu_sweep(
    platform::EvolvablePlatform& platform, std::size_t array,
    const img::Image& probe, const SeuSweepConfig& config = {});

}  // namespace ehw::analysis
