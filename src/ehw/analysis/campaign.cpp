#include "ehw/analysis/campaign.hpp"

#include "ehw/img/metrics.hpp"
#include "ehw/platform/evolution_driver.hpp"

namespace ehw::analysis {

std::size_t CampaignResult::masked_count() const noexcept {
  std::size_t n = 0;
  for (const auto& c : cells) n += c.masked() ? 1 : 0;
  return n;
}

std::size_t CampaignResult::critical_count() const noexcept {
  return cells.size() - masked_count();
}

CampaignResult run_pe_fault_campaign(platform::EvolvablePlatform& platform,
                                     std::size_t array,
                                     const img::Image& train,
                                     const img::Image& reference,
                                     const CampaignConfig& config) {
  EHW_REQUIRE(platform.configured_genotype(array).has_value(),
              "deploy a circuit before running the fault campaign");
  const evo::Genotype deployed = *platform.configured_genotype(array);
  const fpga::ArrayShape shape = platform.config().shape;

  CampaignResult result;
  result.array = array;
  result.cells.reserve(shape.cell_count());

  const img::Image healthy_out = platform.filter_array(array, train);
  const Fitness healthy = img::aggregated_mae(healthy_out, reference);

  for (std::size_t r = 0; r < shape.rows; ++r) {
    for (std::size_t c = 0; c < shape.cols; ++c) {
      CellFaultResult cell;
      cell.row = r;
      cell.col = c;
      cell.healthy_fitness = healthy;

      platform.inject_pe_fault(array, r, c);
      const img::Image faulty_out = platform.filter_array(array, train);
      cell.faulty_fitness = img::aggregated_mae(faulty_out, reference);

      if (config.run_recovery && cell.faulty_fitness > healthy) {
        evo::EsConfig es = config.recovery_es;
        es.seed = config.recovery_es.seed + r * shape.cols + c;
        // Start the recovery from the deployed circuit: the paper's §V
        // re-evolution resumes from the mission chromosome.
        const platform::IntrinsicResult rec = platform::evolve_on_platform(
            platform, {array}, train, reference, es, &deployed);
        cell.recovered_fitness = rec.es.best_fitness;
        if (static_cast<double>(cell.recovered_fitness) <=
            static_cast<double>(healthy) * config.supported_factor) {
          ++result.supported_count;
        }
      }

      // Restore: clear the fault, reconfigure the deployed circuit.
      platform.clear_pe_fault(array, r, c);
      platform.configure_array(array, deployed, platform.now());
      result.cells.push_back(cell);
    }
  }
  return result;
}

}  // namespace ehw::analysis
