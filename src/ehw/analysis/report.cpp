#include "ehw/analysis/report.hpp"

#include <ostream>
#include <sstream>

#include "ehw/common/table.hpp"

namespace ehw::analysis {

namespace {

// Built with appends rather than a chained operator+ expression: GCC 12
// flags the chained form with a spurious -Wrestrict at -O3 (PR105329).
std::string cell_label(std::size_t row, std::size_t col) {
  std::string label = "(";
  label += std::to_string(row);
  label += ",";
  label += std::to_string(col);
  label += ")";
  return label;
}

}  // namespace

void render_criticality_map(std::ostream& os, const CampaignResult& result,
                            const fpga::ArrayShape& shape) {
  EHW_REQUIRE(result.cells.size() == shape.cell_count(),
              "campaign result does not match the array shape");
  os << "criticality map, array " << result.array
     << "  ('.' masked, 'o' mild, 'X' critical):\n";
  for (std::size_t r = 0; r < shape.rows; ++r) {
    os << "  ";
    for (std::size_t c = 0; c < shape.cols; ++c) {
      const CellFaultResult& cell = result.cells[r * shape.cols + c];
      char mark = 'X';
      if (cell.masked()) {
        mark = '.';
      } else if (cell.degradation() <
                 0.10 * static_cast<double>(cell.healthy_fitness + 1)) {
        mark = 'o';
      }
      os << mark << ' ';
    }
    os << '\n';
  }
}

std::string criticality_map_string(const CampaignResult& result,
                                   const fpga::ArrayShape& shape) {
  std::ostringstream os;
  render_criticality_map(os, result, shape);
  return os.str();
}

void render_campaign_table(std::ostream& os, const CampaignResult& result) {
  Table table({"cell", "healthy MAE", "faulty MAE", "recovered MAE",
               "classification"});
  for (const auto& cell : result.cells) {
    std::string cls;
    if (cell.masked()) {
      cls = "masked";
    } else if (cell.recovered_fitness != kInvalidFitness) {
      cls = cell.recovered_fitness <= cell.healthy_fitness * 11 / 10
                ? "supported (recovered)"
                : "degrading";
    } else {
      cls = "critical";
    }
    table.add_row({cell_label(cell.row, cell.col),
                   Table::integer(cell.healthy_fitness),
                   Table::integer(cell.faulty_fitness),
                   cell.recovered_fitness == kInvalidFitness
                       ? "-"
                       : Table::integer(cell.recovered_fitness),
                   cls});
  }
  table.print(os);
  os << "masked " << result.masked_count() << " / critical "
     << result.critical_count();
  if (result.supported_count > 0) {
    os << " / supported-after-recovery " << result.supported_count;
  }
  os << '\n';
}

void render_seu_table(std::ostream& os, const SeuSweepResult& result) {
  Table table({"slot", "flips", "corrupting", "AVF", "scrub-recovered"});
  for (const auto& slot : result.slots) {
    table.add_row({cell_label(slot.row, slot.col),
                   Table::integer(slot.flips),
                   Table::integer(slot.corrupting),
                   Table::num(slot.avf(), 3),
                   Table::integer(slot.scrub_recovered)});
  }
  table.print(os);
  os << "overall AVF " << Table::num(result.overall_avf(), 3) << " over "
     << result.total_flips() << " flips; scrubbing healed "
     << (result.all_scrub_recovered() ? "ALL" : "NOT all") << " flips\n";
}

}  // namespace ehw::analysis
