#pragma once
// Renderers for the analysis results: an ASCII criticality heat map per
// array (which cells the deployed circuit can lose) and summary tables.

#include <iosfwd>
#include <string>

#include "ehw/analysis/campaign.hpp"
#include "ehw/analysis/seu_sweep.hpp"

namespace ehw::analysis {

/// Grid of cells marked by impact:
///   '.' masked (fault invisible), 'o' mild (< 10% of the healthy-output
///   dynamic), 'X' critical. Row-major like the array.
void render_criticality_map(std::ostream& os, const CampaignResult& result,
                            const fpga::ArrayShape& shape);
[[nodiscard]] std::string criticality_map_string(
    const CampaignResult& result, const fpga::ArrayShape& shape);

/// Summary table: per cell healthy/faulty/recovered fitness.
void render_campaign_table(std::ostream& os, const CampaignResult& result);

/// Per-slot AVF table for the SEU sweep.
void render_seu_table(std::ostream& os, const SeuSweepResult& result);

}  // namespace ehw::analysis
