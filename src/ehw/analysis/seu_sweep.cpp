#include "ehw/analysis/seu_sweep.hpp"

namespace ehw::analysis {

std::size_t SeuSweepResult::total_flips() const noexcept {
  std::size_t n = 0;
  for (const auto& s : slots) n += s.flips;
  return n;
}

std::size_t SeuSweepResult::total_corrupting() const noexcept {
  std::size_t n = 0;
  for (const auto& s : slots) n += s.corrupting;
  return n;
}

double SeuSweepResult::overall_avf() const noexcept {
  const std::size_t flips = total_flips();
  return flips == 0 ? 0.0
                    : static_cast<double>(total_corrupting()) /
                          static_cast<double>(flips);
}

bool SeuSweepResult::all_scrub_recovered() const noexcept {
  for (const auto& s : slots) {
    if (s.scrub_recovered != s.flips) return false;
  }
  return true;
}

SeuSweepResult run_seu_sweep(platform::EvolvablePlatform& platform,
                             std::size_t array, const img::Image& probe,
                             const SeuSweepConfig& config) {
  EHW_REQUIRE(config.bit_stride >= 1, "bit stride must be at least 1");
  EHW_REQUIRE(platform.configured_genotype(array).has_value(),
              "deploy a circuit before running the SEU sweep");
  const fpga::ArrayShape shape = platform.config().shape;
  const fpga::FabricGeometry& geometry = platform.geometry();
  fpga::ConfigMemory& memory = platform.config_memory();

  const img::Image golden = platform.filter_array(array, probe);

  SeuSweepResult result;
  result.array = array;
  result.slots.reserve(shape.cell_count());
  const std::size_t words = geometry.words_per_slot();

  for (std::size_t r = 0; r < shape.rows; ++r) {
    for (std::size_t c = 0; c < shape.cols; ++c) {
      SlotSensitivity slot;
      slot.row = r;
      slot.col = c;
      const std::size_t base = geometry.slot_word_base({array, r, c});
      for (std::size_t bit_index = 0; bit_index < words * 32;
           bit_index += config.bit_stride) {
        const std::size_t word = base + bit_index / 32;
        const auto bit = static_cast<unsigned>(bit_index % 32);
        memory.flip_bit(word, bit);
        ++slot.flips;
        const img::Image out = platform.filter_array(array, probe);
        if (!(out == golden)) ++slot.corrupting;
        // Scrub the slot and verify full functional recovery.
        std::size_t corrected = 0;
        std::size_t uncorrectable = 0;
        platform.scrub_array(array, platform.now(), &corrected,
                             &uncorrectable);
        const img::Image healed = platform.filter_array(array, probe);
        if (healed == golden && uncorrectable == 0) ++slot.scrub_recovered;
      }
      result.slots.push_back(slot);
    }
  }
  return result;
}

}  // namespace ehw::analysis
