#include "ehw/sched/array_pool.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

namespace ehw::sched {

// --- MissionRunner ----------------------------------------------------------

JobStatus MissionRunner::status() const {
  std::lock_guard lock(mutex_);
  return status_;
}

void MissionRunner::wait() const {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] {
    return status_ != JobStatus::kQueued && status_ != JobStatus::kRunning;
  });
}

const JobOutcome& MissionRunner::result() const {
  wait();
  // Finished state is immutable; the wait() above synchronizes with
  // finish(), so reading without the lock is race-free.
  return outcome_;
}

sim::SimTime MissionRunner::sim_duration() const {
  wait();
  return sim_duration_;
}

void MissionRunner::finish(JobStatus status, JobOutcome outcome,
                           sim::SimTime duration) {
  {
    std::lock_guard lock(mutex_);
    status_ = status;
    outcome_ = std::move(outcome);
    sim_duration_ = duration;
  }
  cv_.notify_all();
}

// --- MissionContext ---------------------------------------------------------

MissionContext::MissionContext(JobConfig job, const PoolConfig& pool_config,
                               CompiledArrayCache* cache,
                               MissionRunner* runner)
    : job_(std::move(job)), cache_(cache), runner_(runner) {
  platform::PlatformConfig pc;
  pc.num_arrays = job_.lanes;
  pc.shape = pool_config.shape;
  pc.clock_mhz = pool_config.clock_mhz;
  pc.line_width = pool_config.line_width;
  pc.seed = job_.platform_seed;
  pc.enable_trace = job_.enable_trace;
  pc.pool = pool_config.host_pool;
  platform_ = std::make_unique<platform::EvolvablePlatform>(pc);
  lanes_.resize(job_.lanes);
  for (std::size_t i = 0; i < job_.lanes; ++i) lanes_[i] = i;
}

void MissionContext::check_cancelled() const {
  if (runner_ != nullptr && runner_->cancel_requested()) {
    throw MissionCancelled();
  }
}

std::shared_ptr<const pe::CompiledArray> MissionContext::compile_cached(
    std::size_t lane) {
  if (cache_ == nullptr) {
    ++misses_;
    return std::make_shared<const pe::CompiledArray>(
        platform_->compile_array(lane));
  }
  // Key = genotype content hash x fabric fingerprint: the fingerprint
  // already covers the genotype as materialized (plus the defect map and
  // ACB registers); mixing the genotype's own hash keeps the key robust
  // even for hypothetical fabrics whose memory image underdetermines the
  // written genes.
  const std::optional<evo::Genotype>& configured =
      platform_->configured_genotype(lane);
  const std::uint64_t key =
      hash_mix(platform_->configuration_fingerprint(lane),
               configured.has_value() ? configured->hash() : 0);
  bool hit = false;
  auto compiled = cache_->get_or_compile(
      key, [this, lane] { return platform_->compile_array(lane); }, &hit);
  if (hit) {
    ++hits_;
  } else {
    ++misses_;
  }
  return compiled;
}

platform::WaveOutcome MissionContext::run_wave(
    const std::vector<evo::Candidate>& offspring,
    const std::vector<std::size_t>& wave_lanes, const img::Image& input,
    const img::Image& compare, sim::SimTime barrier) {
  check_cancelled();
  platform::WaveOutcome outcome = platform::evaluate_offspring_wave(
      *platform_, offspring, wave_lanes, input, compare, barrier,
      [this](std::size_t lane) { return compile_cached(lane); });
  if (runner_ != nullptr) {
    runner_->waves_.fetch_add(1, std::memory_order_relaxed);
  }
  return outcome;
}

// --- ArrayPool --------------------------------------------------------------

ArrayPool::ArrayPool(PoolConfig config)
    : config_(config),
      cache_(config.cache_capacity),
      free_arrays_(config.num_arrays) {
  EHW_REQUIRE(config_.num_arrays > 0, "pool needs at least one array");
}

ArrayPool::~ArrayPool() { wait_all(); }

std::shared_ptr<MissionRunner> ArrayPool::submit(JobConfig job, JobBody body) {
  EHW_REQUIRE(job.lanes >= 1 && job.lanes <= config_.num_arrays,
              "job lane demand must fit the pool");
  EHW_REQUIRE(body != nullptr, "job body required");
  auto runner = std::shared_ptr<MissionRunner>(new MissionRunner(job.name));
  {
    std::lock_guard lock(mutex_);
    auto rec = std::make_unique<Job>();
    rec->id = jobs_.size();
    rec->config = std::move(job);
    rec->body = std::move(body);
    rec->runner = runner;
    queue_.push(JobTicket{rec->id, rec->config.name, rec->config.lanes,
                          rec->config.priority});
    jobs_.push_back(std::move(rec));
    admit_locked();
  }
  return runner;
}

void ArrayPool::admit_locked() {
  while (config_.max_concurrent_jobs == 0 ||
         running_ < config_.max_concurrent_jobs) {
    std::optional<JobTicket> ticket = queue_.pop_admissible(free_arrays_);
    if (!ticket.has_value()) break;
    Job* job = jobs_[ticket->id].get();
    free_arrays_ -= job->config.lanes;
    ++running_;
    {
      std::lock_guard rlock(job->runner->mutex_);
      job->runner->status_ = JobStatus::kRunning;
    }
    try {
      job->thread = std::thread([this, job] { run_job(job); });
    } catch (const std::system_error& e) {
      // Thread exhaustion must not strand the lease (hanging wait_all)
      // or escape into std::terminate: roll back and fail the job.
      free_arrays_ += job->config.lanes;
      --running_;
      job->finished = true;
      JobOutcome outcome;
      outcome.error = std::string("failed to start job thread: ") + e.what();
      job->runner->finish(JobStatus::kFailed, std::move(outcome), 0);
      cv_.notify_all();
    }
  }
}

void ArrayPool::run_job(Job* job) {
  MissionContext context(job->config, config_,
                         config_.cache_capacity > 0 ? &cache_ : nullptr,
                         job->runner.get());
  JobOutcome outcome;
  JobStatus status = JobStatus::kDone;
  try {
    job->body(context, outcome);
  } catch (const MissionCancelled&) {
    status = JobStatus::kCancelled;
  } catch (const std::exception& e) {
    status = JobStatus::kFailed;
    outcome.error = e.what();
  } catch (...) {
    status = JobStatus::kFailed;
    outcome.error = "unknown job error";
  }
  // Cache traffic is an execution statistic (depends on what other
  // missions warmed the cache with), layered onto the bit-reproducible
  // mission results.
  outcome.stats.cache_hits = context.cache_hits();
  outcome.stats.cache_misses = context.cache_misses();
  const sim::SimTime duration = context.platform().now();
  job->runner->finish(status, std::move(outcome), duration);
  {
    std::lock_guard lock(mutex_);
    job->sim_duration = duration;
    job->finished = true;
    free_arrays_ += job->config.lanes;
    --running_;
    admit_locked();
    cv_.notify_all();  // under the lock: wait_all may destroy the pool next
  }
}

void ArrayPool::wait_all() {
  std::vector<std::thread> to_join;
  {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
    for (const auto& job : jobs_) {
      if (job->thread.joinable()) to_join.push_back(std::move(job->thread));
    }
  }
  for (std::thread& t : to_join) t.join();
}

std::size_t ArrayPool::jobs_in_flight() const {
  std::lock_guard lock(mutex_);
  return queue_.size() + running_;
}

ArrayPool::ScheduleReport ArrayPool::simulated_schedule() {
  wait_all();

  // Replay the admission policy in simulated time over the recorded job
  // durations: a deterministic event-driven list schedule (events ordered
  // by end time, ties by submission id) on num_arrays arrays.
  ScheduleReport report;
  JobQueue queue;  // fresh aging state, default policy parameters
  std::vector<const Job*> jobs;
  {
    std::lock_guard lock(mutex_);
    for (const auto& job : jobs_) jobs.push_back(job.get());
  }
  report.jobs.resize(jobs.size());
  for (const Job* job : jobs) {
    queue.push(JobTicket{job->id, job->config.name, job->config.lanes,
                         job->config.priority});
    report.serialized += job->sim_duration;
  }

  using Event = std::tuple<sim::SimTime, std::uint64_t, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> running;
  std::size_t free = config_.num_arrays;
  sim::SimTime now = 0;
  std::size_t active = 0;
  while (!queue.empty() || !running.empty()) {
    while (config_.max_concurrent_jobs == 0 ||
           active < config_.max_concurrent_jobs) {
      std::optional<JobTicket> ticket = queue.pop_admissible(free);
      if (!ticket.has_value()) break;
      const Job* job = jobs[ticket->id];
      ScheduleEntry& entry = report.jobs[ticket->id];
      entry.name = job->config.name;
      entry.lanes = job->config.lanes;
      entry.start = now;
      entry.end = now + job->sim_duration;
      free -= job->config.lanes;
      ++active;
      running.emplace(entry.end, ticket->id, job->config.lanes);
      report.makespan = std::max(report.makespan, entry.end);
    }
    if (running.empty()) {
      // Nothing running and nothing admissible: only possible when the
      // queue is empty too (every job fits an idle pool by construction).
      EHW_ASSERT(queue.empty(), "scheduler replay stalled");
      break;
    }
    const auto [end, id, lanes] = running.top();
    running.pop();
    static_cast<void>(id);
    now = std::max(now, end);
    free += lanes;
    --active;
  }
  return report;
}

}  // namespace ehw::sched
