#include "ehw/sched/array_pool.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

#include "ehw/common/fault.hpp"
#include "ehw/evo/batch.hpp"
#include "ehw/evo/serialize.hpp"
#include "ehw/obs/trace.hpp"
#include "ehw/sched/missions.hpp"

namespace ehw::sched {

// --- MissionRunner ----------------------------------------------------------

JobStatus MissionRunner::status() const {
  std::lock_guard lock(mutex_);
  return status_;
}

void MissionRunner::wait() const {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] {
    return status_ != JobStatus::kQueued && status_ != JobStatus::kRunning;
  });
}

const JobOutcome& MissionRunner::result() const {
  wait();
  // Finished state is immutable; the wait() above synchronizes with
  // finish(), so reading without the lock is race-free.
  return outcome_;
}

sim::SimTime MissionRunner::sim_duration() const {
  wait();
  return sim_duration_;
}

void MissionRunner::finish(JobStatus status, JobOutcome outcome,
                           sim::SimTime duration) {
  std::vector<EventCallback> observers;
  {
    std::lock_guard lock(mutex_);
    status_ = status;
    outcome_ = std::move(outcome);
    sim_duration_ = duration;
    observers = std::move(observers_);
    observers_.clear();  // no further events after kFinished
  }
  cv_.notify_all();
  MissionEvent event;
  event.kind = MissionEvent::Kind::kFinished;
  event.waves = waves_.load(std::memory_order_relaxed);
  event.status = status;
  for (const EventCallback& observer : observers) observer(event);
}

void MissionRunner::subscribe(EventCallback callback) {
  MissionEvent finished;
  {
    std::lock_guard lock(mutex_);
    if (status_ == JobStatus::kQueued || status_ == JobStatus::kRunning) {
      observers_.push_back(std::move(callback));
      return;
    }
    finished.kind = MissionEvent::Kind::kFinished;
    finished.waves = waves_.load(std::memory_order_relaxed);
    finished.status = status_;
  }
  // Already finished: fire immediately on the subscriber's thread, outside
  // the lock (the callback may call into this runner).
  callback(finished);
}

void MissionRunner::notify_wave() {
  const std::uint64_t waves =
      waves_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::vector<EventCallback> observers;
  {
    std::lock_guard lock(mutex_);
    if (observers_.empty()) return;
    observers = observers_;  // copy: callbacks run outside the lock
  }
  MissionEvent event;
  event.kind = MissionEvent::Kind::kProgress;
  event.waves = waves;
  event.status = JobStatus::kRunning;
  for (const EventCallback& observer : observers) observer(event);
}

// --- MissionContext ---------------------------------------------------------

MissionContext::MissionContext(JobConfig job, const PoolConfig& pool_config,
                               CompiledArrayCache* cache,
                               evo::FitnessMemo* memo, MissionRunner* runner,
                               ArrayPool* pool, std::uint64_t job_id)
    : job_(std::move(job)),
      cache_(cache),
      runner_(runner),
      pool_(pool),
      job_id_(job_id) {
  wave_memo_.memo = memo;
  platform::PlatformConfig pc;
  pc.num_arrays = job_.lanes;
  pc.shape = pool_config.shape;
  pc.clock_mhz = pool_config.clock_mhz;
  pc.line_width = pool_config.line_width;
  pc.seed = job_.platform_seed;
  pc.enable_trace = job_.enable_trace;
  pc.pool = pool_config.host_pool;
  platform_ = std::make_unique<platform::EvolvablePlatform>(pc);
  lanes_.resize(job_.lanes);
  for (std::size_t i = 0; i < job_.lanes; ++i) lanes_[i] = i;
}

void MissionContext::check_cancelled() const {
  if (runner_ != nullptr && runner_->cancel_requested()) {
    throw MissionCancelled();
  }
}

bool MissionContext::preempt_requested() const noexcept {
  return runner_ != nullptr && runner_->preempt_requested();
}

MissionImagesCache* MissionContext::images_cache() noexcept {
  return pool_ != nullptr ? pool_->images_cache() : nullptr;
}

platform::CompiledLane MissionContext::compile_cached(std::size_t lane) {
  // Key = genotype content hash x fabric fingerprint: the fingerprint
  // already covers the genotype as materialized (plus the defect map and
  // ACB registers); mixing the genotype's own hash keeps the key robust
  // even for hypothetical fabrics whose memory image underdetermines the
  // written genes. The same key doubles as the candidate half of the
  // fitness-memo key (the wave mixes the frame-set id in).
  const std::optional<evo::Genotype>& configured =
      platform_->configured_genotype(lane);
  const std::uint64_t key =
      hash_mix(platform_->configuration_fingerprint(lane),
               configured.has_value() ? configured->hash() : 0);
  if (cache_ == nullptr) {
    ++misses_;
    EHW_TRACE_SPAN("compile");
    return {std::make_shared<const pe::CompiledArray>(
                platform_->compile_array(lane)),
            key};
  }
  bool hit = false;
  auto compiled = cache_->get_or_compile(
      key,
      [this, lane] {
        // Span inside the factory: cache hits cost no clock reads, and
        // the profile's compile phase counts real compilations only.
        EHW_TRACE_SPAN("compile");
        return platform_->compile_array(lane);
      },
      &hit);
  if (hit) {
    ++hits_;
  } else {
    ++misses_;
    // Record how to rebuild this entry so warm-state persistence can
    // recompile it on a fresh pool after a restart.
    if (configured.has_value()) {
      cache_->note_recipe(key, lane, evo::serialize_genotype(*configured));
    }
  }
  return {std::move(compiled), key};
}

platform::WaveOutcome MissionContext::run_wave(
    const std::vector<evo::Candidate>& offspring,
    const std::vector<std::size_t>& wave_lanes, const img::Image& input,
    const img::Image& compare, sim::SimTime barrier) {
  EHW_TRACE_SPAN("wave");
  check_cancelled();
  if (pool_ != nullptr) pool_->poll_wave_faults(job_id_);
  // The frame-set id is recomputed per wave from the actual frame
  // contents (cascade stages swap inputs mid-mission); hashing two
  // frames costs a fraction of evaluating lambda candidates on them.
  if (wave_memo_.memo != nullptr) {
    wave_memo_.frame_set_id = evo::frame_set_id(input, compare);
  }
  platform::WaveOutcome outcome = platform::evaluate_offspring_wave(
      *platform_, offspring, wave_lanes, input, compare, barrier,
      [this](std::size_t lane) { return compile_cached(lane); },
      &wave_memo_);
  if (runner_ != nullptr) runner_->notify_wave();
  return outcome;
}

// --- ArrayPool --------------------------------------------------------------

ArrayPool::ArrayPool(PoolConfig config)
    : config_(config),
      workers_(config.workers != nullptr ? config.workers
                                         : &WorkStealPool::shared()),
      cache_(config.cache_capacity),
      memo_(config.fitness_memo_capacity),
      images_cache_(config.mission_images_capacity != 0
                        ? std::make_unique<MissionImagesCache>(
                              config.mission_images_capacity)
                        : nullptr),
      slots_(config.num_arrays),
      free_arrays_(config.num_arrays) {
  EHW_REQUIRE(config_.num_arrays > 0, "pool needs at least one array");
  publish_stats_locked();  // no concurrency yet; seed the mirrors
}

ArrayPool::~ArrayPool() {
  wait_all();
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

std::shared_ptr<MissionRunner> ArrayPool::submit(JobConfig job, JobBody body) {
  EHW_REQUIRE(job.lanes >= 1 && job.lanes <= config_.num_arrays,
              "job lane demand must fit the pool");
  EHW_REQUIRE(body != nullptr, "job body required");
  auto runner = std::shared_ptr<MissionRunner>(new MissionRunner(job.name));
  std::vector<FailedStart> failures;
  {
    std::lock_guard lock(mutex_);
    auto rec = std::make_unique<Job>();
    rec->id = next_job_id_++;
    rec->submit_ns = obs::Tracer::now_ns();
    ++submitted_;
    rec->config = std::move(job);
    rec->body = std::move(body);
    rec->runner = runner;
    if (rec->config.lanes > config_.num_arrays - quarantined_) {
      // The demand can never fit the healthy capacity: fail now instead
      // of queueing a job that would wait forever (and hang wait_all).
      rec->finished = true;
      ++failed_;
      failures.push_back(FailedStart{
          rec->runner, "insufficient healthy arrays (" +
                           std::to_string(config_.num_arrays - quarantined_) +
                           " of " + std::to_string(config_.num_arrays) +
                           " healthy, job needs " +
                           std::to_string(rec->config.lanes) + ")"});
      jobs_.emplace(rec->id, std::move(rec));
    } else {
      queue_.push(JobTicket{rec->id, rec->config.name, rec->config.lanes,
                            rec->config.priority});
      jobs_.emplace(rec->id, std::move(rec));
      admit_locked(failures);
    }
    publish_stats_locked();
  }
  finish_failed(failures);
  return runner;
}

void ArrayPool::admit_locked(std::vector<FailedStart>& failures) {
  while (config_.max_concurrent_jobs == 0 ||
         running_ < config_.max_concurrent_jobs) {
    std::optional<JobTicket> ticket = queue_.pop_admissible(free_arrays_);
    if (!ticket.has_value()) break;
    Job* job = jobs_.at(ticket->id).get();
    // Lease the first free (healthy) slots by id — deterministic, and
    // the health report names who holds what.
    job->leased.clear();
    for (std::size_t id = 0;
         id < slots_.size() && job->leased.size() < job->config.lanes; ++id) {
      if (slots_[id].state == ArrayHealth::State::kFree) {
        slots_[id].state = ArrayHealth::State::kLeased;
        slots_[id].job_id = job->id;
        job->leased.push_back(id);
      }
    }
    EHW_ASSERT(job->leased.size() == job->config.lanes,
               "free-array count out of sync with slot states");
    free_arrays_ -= job->config.lanes;
    ++running_;
    ++pending_tasks_;
    if (job->config.deadline_ms > 0) {
      job->has_deadline = true;
      job->deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(job->config.deadline_ms);
      ensure_watchdog_locked();
    }
    {
      std::lock_guard rlock(job->runner->mutex_);
      job->runner->status_ = JobStatus::kRunning;
    }
    try {
      // No thread is created here: the body becomes a task on the
      // shared work-stealing core. A job admitted from a finishing
      // job's worker lands on that worker's own deque and runs next,
      // cache-warm; idle workers steal it otherwise.
      workers_->submit([this, job] { run_job(job); });
    } catch (const std::exception& e) {
      // Dispatch failure (allocation) must not strand the lease
      // (hanging wait_all) or escape into std::terminate: roll back and
      // fail the job. The runner's finish() — and with it any
      // subscribed observers — is deferred to the caller, outside the
      // pool lock.
      for (const std::size_t id : job->leased) {
        slots_[id].state = ArrayHealth::State::kFree;
        slots_[id].pending_quarantine = false;
      }
      job->leased.clear();
      free_arrays_ += job->config.lanes;
      --running_;
      --pending_tasks_;
      job->finished = true;
      ++failed_;
      failures.push_back(FailedStart{
          job->runner,
          std::string("failed to dispatch job body: ") + e.what()});
      cv_.notify_all();
    }
  }
}

void ArrayPool::finish_failed(std::vector<FailedStart>& failures) {
  for (FailedStart& failure : failures) {
    JobOutcome outcome;
    outcome.error = std::move(failure.error);
    failure.runner->finish(JobStatus::kFailed, std::move(outcome), 0);
  }
  failures.clear();
}

void ArrayPool::run_job(Job* job) {
  JobOutcome outcome;
  JobStatus status = JobStatus::kDone;
  sim::SimTime duration = 0;
  // Queue wait: admission to the moment a worker picked the body up. Fed
  // into the job's profile unconditionally (two clock reads) and into the
  // trace ring when armed; the span's start is the admission instant, so
  // the trace shows the wait, not just its length.
  obs::ProfileCollector profile;
  {
    const std::uint64_t picked_ns = obs::Tracer::now_ns();
    if (picked_ns > job->submit_ns) {
      const std::uint64_t waited_ns = picked_ns - job->submit_ns;
      profile.add("queue_wait", waited_ns);
      if (obs::Tracer::armed()) {
        obs::Tracer::global().record("queue_wait", job->submit_ns, waited_ns);
      }
    }
  }
  try {
    if (fault::should_fire(fault::Site::kTaskThrow)) {
      throw std::runtime_error("injected task fault");
    }
    // Constructed INSIDE the try: platform construction can throw (bad
    // fabric parameters, allocation), and a poison job must become a
    // failed result — never an exception escaping into the worker.
    MissionContext context(
        job->config, config_, config_.cache_capacity > 0 ? &cache_ : nullptr,
        config_.fitness_memo_capacity > 0 ? &memo_ : nullptr,
        job->runner.get(), this, job->id);
    // The collector rides the worker thread for the body's whole run, so
    // every EHW_TRACE_SPAN fired below (compile, wave, wave_eval,
    // memo_lookup, ...) lands in this job's phase table even with the
    // tracer disarmed.
    obs::ProfileScope profile_scope(&profile);
    try {
      job->body(context, outcome);
    } catch (const MissionPreempted&) {
      status = JobStatus::kPreempted;
    } catch (const MissionCancelled&) {
      if (job->runner->deadline_exceeded()) {
        status = JobStatus::kFailed;
        outcome.error = "deadline exceeded (" +
                        std::to_string(job->config.deadline_ms) + " ms)";
      } else {
        status = JobStatus::kCancelled;
      }
    } catch (const std::exception& e) {
      status = JobStatus::kFailed;
      outcome.error = e.what();
    } catch (...) {
      status = JobStatus::kFailed;
      outcome.error = "unknown job error";
    }
    // Cache traffic is an execution statistic (depends on what other
    // missions warmed the cache with), layered onto the bit-reproducible
    // mission results.
    outcome.stats.cache_hits = context.cache_hits();
    outcome.stats.cache_misses = context.cache_misses();
    outcome.stats.memo_hits = context.memo_hits();
    outcome.stats.memo_misses = context.memo_misses();
    duration = context.platform().now();
  } catch (const std::exception& e) {
    status = JobStatus::kFailed;
    outcome.error = e.what();
  } catch (...) {
    status = JobStatus::kFailed;
    outcome.error = "unknown job error";
  }
  // The collector is off the thread now (scope closed with the try);
  // snapshotting it here keeps partial profiles for failed/cancelled jobs.
  if (!profile.empty()) outcome.profile = profile.to_json();
  std::vector<FailedStart> failures;
  {
    std::lock_guard lock(mutex_);
    job->sim_duration = duration;
    switch (status) {
      case JobStatus::kDone: ++done_; break;
      case JobStatus::kFailed: ++failed_; break;
      case JobStatus::kCancelled: ++cancelled_; break;
      case JobStatus::kPreempted: ++preempted_; break;
      case JobStatus::kQueued:
      case JobStatus::kRunning: break;  // unreachable terminal states
    }
    // Release the lease; an array flagged for quarantine mid-flight
    // leaves service here instead of returning to the free set.
    for (const std::size_t id : job->leased) {
      if (slots_[id].pending_quarantine) {
        slots_[id].state = ArrayHealth::State::kQuarantined;
        slots_[id].pending_quarantine = false;
        ++quarantined_;
      } else {
        slots_[id].state = ArrayHealth::State::kFree;
        ++free_arrays_;
      }
    }
    job->leased.clear();
    --running_;
    evict_unsatisfiable_locked(failures);
    admit_locked(failures);
    publish_stats_locked();
  }
  // Wake result() waiters only after the pool's books reflect the job —
  // a caller returning from result() may immediately read pool_stats()
  // or array_health() and must see the completed state, not a snapshot
  // from mid-teardown. finish() is called outside mutex_ (it takes the
  // runner's own lock and may run user completion paths).
  job->runner->finish(status, std::move(outcome), duration);
  // finish_failed is static and touches only the failure records'
  // runners (kept alive by their shared_ptrs), never the pool.
  finish_failed(failures);
  {
    std::lock_guard lock(mutex_);
    job->finished = true;
    --pending_tasks_;  // last: nothing after this section touches *this
    cv_.notify_all();  // under the lock: wait_all may destroy the pool next
  }
}

void ArrayPool::wait_all() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] {
    return queue_.empty() && running_ == 0 && pending_tasks_ == 0;
  });
}

std::size_t ArrayPool::reap_finished() {
  std::lock_guard lock(mutex_);
  std::size_t reaped = 0;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    // A `finished` job's run_job task is past every access to the
    // record (finished flips in its final critical section), so the
    // record can be freed under the same mutex.
    if (it->second->finished) {
      it = jobs_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  return reaped;
}

std::size_t ArrayPool::jobs_in_flight() const {
  std::lock_guard lock(mutex_);
  return queue_.size() + running_;
}

// --- quarantine and the deadline watchdog -----------------------------------

void ArrayPool::quarantine_locked(std::size_t id,
                                  std::vector<FailedStart>& failures) {
  if (id >= slots_.size()) return;
  ArraySlot& slot = slots_[id];
  switch (slot.state) {
    case ArrayHealth::State::kFree:
      slot.state = ArrayHealth::State::kQuarantined;
      --free_arrays_;
      ++quarantined_;
      break;
    case ArrayHealth::State::kLeased: {
      // Can't pull a live lease out from under its platform slice:
      // flag it, preempt the owner (it checkpoints at its next
      // generation boundary), and quarantine on release.
      if (!slot.pending_quarantine) {
        slot.pending_quarantine = true;
        auto it = jobs_.find(slot.job_id);
        if (it != jobs_.end() && it->second->runner != nullptr) {
          it->second->runner->request_preempt();
        }
      }
      break;
    }
    case ArrayHealth::State::kQuarantined:
      break;
  }
  evict_unsatisfiable_locked(failures);
}

void ArrayPool::evict_unsatisfiable_locked(
    std::vector<FailedStart>& failures) {
  // Pending quarantines count against future capacity too: the lease
  // holding them will release into quarantine.
  std::size_t pending = 0;
  for (const ArraySlot& slot : slots_) {
    if (slot.pending_quarantine) ++pending;
  }
  const std::size_t healthy = config_.num_arrays - quarantined_ - pending;
  for (JobTicket& ticket : queue_.evict_wider_than(healthy)) {
    Job* job = jobs_.at(ticket.id).get();
    job->finished = true;
    ++failed_;
    failures.push_back(FailedStart{
        job->runner, "insufficient healthy arrays (" +
                         std::to_string(healthy) + " of " +
                         std::to_string(config_.num_arrays) +
                         " healthy, job needs " +
                         std::to_string(job->config.lanes) + ")"});
  }
  if (!failures.empty()) cv_.notify_all();
}

void ArrayPool::quarantine_array(std::size_t id) {
  std::vector<FailedStart> failures;
  {
    std::lock_guard lock(mutex_);
    quarantine_locked(id, failures);
    publish_stats_locked();
  }
  finish_failed(failures);
}

bool ArrayPool::heal_array(std::size_t id) {
  std::vector<FailedStart> failures;
  bool healed = false;
  {
    std::lock_guard lock(mutex_);
    if (id < slots_.size()) {
      ArraySlot& slot = slots_[id];
      if (slot.state == ArrayHealth::State::kQuarantined) {
        slot.state = ArrayHealth::State::kFree;
        ++free_arrays_;
        --quarantined_;
        healed = true;
        admit_locked(failures);
      } else if (slot.pending_quarantine) {
        slot.pending_quarantine = false;
        healed = true;
      }
    }
    publish_stats_locked();
  }
  finish_failed(failures);
  return healed;
}

std::size_t ArrayPool::healthy_arrays() const {
  std::lock_guard lock(mutex_);
  return config_.num_arrays - quarantined_;
}

std::vector<ArrayPool::ArrayHealth> ArrayPool::array_health() const {
  std::lock_guard lock(mutex_);
  std::vector<ArrayHealth> report(slots_.size());
  for (std::size_t id = 0; id < slots_.size(); ++id) {
    report[id].id = id;
    report[id].state = slots_[id].state;
    report[id].pending_quarantine = slots_[id].pending_quarantine;
    if (slots_[id].state == ArrayHealth::State::kLeased) {
      auto it = jobs_.find(slots_[id].job_id);
      if (it != jobs_.end()) report[id].job = it->second->config.name;
    }
  }
  return report;
}

void ArrayPool::poll_wave_faults(std::uint64_t job_id) {
  if (!fault::should_fire(fault::Site::kLaneSeu)) return;
  std::vector<FailedStart> failures;
  {
    std::lock_guard lock(mutex_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end() || it->second->leased.empty()) return;
    // Deterministic victim: the job's first leased array.
    quarantine_locked(it->second->leased.front(), failures);
    publish_stats_locked();
  }
  finish_failed(failures);
}

void ArrayPool::ensure_watchdog_locked() {
  if (watchdog_.joinable()) {
    watchdog_cv_.notify_all();
    return;
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

void ArrayPool::watchdog_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (stopping_) return;
    // Nearest pending deadline among running jobs.
    bool any = false;
    std::chrono::steady_clock::time_point next{};
    const auto now = std::chrono::steady_clock::now();
    for (auto& [id, job] : jobs_) {
      if (job->finished || !job->has_deadline || job->deadline_fired ||
          job->leased.empty()) {
        continue;
      }
      if (job->deadline <= now) {
        job->deadline_fired = true;
        ++deadline_expired_;
        job->runner->expire();
        continue;
      }
      if (!any || job->deadline < next) {
        any = true;
        next = job->deadline;
      }
    }
    publish_stats_locked();  // deadline_expired_ may have advanced
    if (any) {
      watchdog_cv_.wait_until(lock, next);
    } else {
      watchdog_cv_.wait(lock);
    }
  }
}

ArrayPool::PoolStats ArrayPool::pool_stats() const {
  std::lock_guard lock(mutex_);
  PoolStats stats;
  stats.num_arrays = config_.num_arrays;
  stats.free_arrays = free_arrays_;
  stats.quarantined = quarantined_;
  stats.running = running_;
  stats.queued = queue_.size();
  stats.submitted = submitted_;
  stats.done = done_;
  stats.failed = failed_;
  stats.cancelled = cancelled_;
  stats.preempted = preempted_;
  stats.deadline_expired = deadline_expired_;
  return stats;
}

void ArrayPool::publish_stats_locked() const noexcept {
  mirror_.free_arrays.store(free_arrays_, std::memory_order_relaxed);
  mirror_.quarantined.store(quarantined_, std::memory_order_relaxed);
  mirror_.running.store(running_, std::memory_order_relaxed);
  mirror_.queued.store(queue_.size(), std::memory_order_relaxed);
  mirror_.submitted.store(submitted_, std::memory_order_relaxed);
  mirror_.done.store(done_, std::memory_order_relaxed);
  mirror_.failed.store(failed_, std::memory_order_relaxed);
  mirror_.cancelled.store(cancelled_, std::memory_order_relaxed);
  mirror_.preempted.store(preempted_, std::memory_order_relaxed);
  mirror_.deadline_expired.store(deadline_expired_, std::memory_order_relaxed);
}

ArrayPool::PoolStats ArrayPool::quick_stats() const noexcept {
  PoolStats stats;
  stats.num_arrays = config_.num_arrays;
  stats.free_arrays = mirror_.free_arrays.load(std::memory_order_relaxed);
  stats.quarantined = mirror_.quarantined.load(std::memory_order_relaxed);
  stats.running = mirror_.running.load(std::memory_order_relaxed);
  stats.queued = mirror_.queued.load(std::memory_order_relaxed);
  stats.submitted = mirror_.submitted.load(std::memory_order_relaxed);
  stats.done = mirror_.done.load(std::memory_order_relaxed);
  stats.failed = mirror_.failed.load(std::memory_order_relaxed);
  stats.cancelled = mirror_.cancelled.load(std::memory_order_relaxed);
  stats.preempted = mirror_.preempted.load(std::memory_order_relaxed);
  stats.deadline_expired =
      mirror_.deadline_expired.load(std::memory_order_relaxed);
  return stats;
}

ArrayPool::ScheduleReport ArrayPool::simulated_schedule() {
  wait_all();

  // Replay the admission policy in simulated time over the recorded job
  // durations: a deterministic event-driven list schedule (events ordered
  // by end time, ties by submission id) on num_arrays arrays.
  ScheduleReport report;
  JobQueue queue;  // fresh aging state, default policy parameters
  std::vector<const Job*> jobs;  // ascending id == submission order
  {
    std::lock_guard lock(mutex_);
    for (const auto& [id, job] : jobs_) jobs.push_back(job.get());
  }
  report.jobs.resize(jobs.size());
  // Ids are sparse once jobs have been reaped; map them to report slots.
  std::map<std::uint64_t, std::size_t> slot_of;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job* job = jobs[i];
    slot_of[job->id] = i;
    queue.push(JobTicket{job->id, job->config.name, job->config.lanes,
                         job->config.priority});
    report.serialized += job->sim_duration;
  }

  using Event = std::tuple<sim::SimTime, std::uint64_t, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> running;
  std::size_t free = config_.num_arrays;
  sim::SimTime now = 0;
  std::size_t active = 0;
  while (!queue.empty() || !running.empty()) {
    while (config_.max_concurrent_jobs == 0 ||
           active < config_.max_concurrent_jobs) {
      std::optional<JobTicket> ticket = queue.pop_admissible(free);
      if (!ticket.has_value()) break;
      const std::size_t slot = slot_of.at(ticket->id);
      const Job* job = jobs[slot];
      ScheduleEntry& entry = report.jobs[slot];
      entry.name = job->config.name;
      entry.lanes = job->config.lanes;
      entry.start = now;
      entry.end = now + job->sim_duration;
      free -= job->config.lanes;
      ++active;
      running.emplace(entry.end, ticket->id, job->config.lanes);
      report.makespan = std::max(report.makespan, entry.end);
    }
    if (running.empty()) {
      // Nothing running and nothing admissible: only possible when the
      // queue is empty too (every job fits an idle pool by construction).
      EHW_ASSERT(queue.empty(), "scheduler replay stalled");
      break;
    }
    const auto [end, id, lanes] = running.top();
    running.pop();
    static_cast<void>(id);
    now = std::max(now, end);
    free += lanes;
    --active;
  }
  return report;
}

// --- warm-state persistence -------------------------------------------------

namespace {
constexpr const char* kWarmFormatTag = "mpa-warm-v1";
}  // namespace

Json ArrayPool::export_warm_state() const {
  Json memo_entries = Json::array();
  for (const auto& [key, fitness] : memo_.snapshot()) {
    memo_entries.push_back(
        Json::Object{{"k", json_u64(key)}, {"f", json_u64(fitness)}});
  }
  Json cache_entries = Json::array();
  for (const CacheRecipe& recipe : cache_.recipes()) {
    cache_entries.push_back(Json::Object{
        {"key", json_u64(recipe.key)},
        {"lane", json_u64(recipe.lane)},
        {"genotype", Json(recipe.genotype)},
    });
  }
  return Json(Json::Object{
      {"format", Json(kWarmFormatTag)},
      {"memo", std::move(memo_entries)},
      {"cache", std::move(cache_entries)},
  });
}

ArrayPool::WarmLoadStats ArrayPool::import_warm_state(const Json& state) {
  WarmLoadStats loaded;
  if (!state.is_object() || state.get_string("format", "") != kWarmFormatTag) {
    return loaded;
  }

  if (const Json* memo = state.get("memo");
      memo != nullptr && memo->is_array()) {
    std::vector<std::pair<std::uint64_t, Fitness>> entries;
    entries.reserve(memo->as_array().size());
    for (const Json& entry : memo->as_array()) {
      std::uint64_t key = 0;
      Fitness fitness = 0;
      if (json_read_u64(entry.get("k"), key) &&
          json_read_u64(entry.get("f"), fitness)) {
        entries.emplace_back(key, fitness);
      }
    }
    memo_.preload(entries);
    loaded.memo_loaded = entries.size();
  }

  const Json* cache = state.get("cache");
  if (cache == nullptr || !cache->is_array() || cache->as_array().empty() ||
      config_.cache_capacity == 0) {
    return loaded;
  }
  // Recompile recipes on a scratch slice with the default mission fabric
  // seed; the re-derived key must round-trip or the recipe is dropped
  // (jobs with custom platform seeds — or damaged fabrics — simply fall
  // back to cold compiles, never to wrong entries).
  platform::PlatformConfig pc;
  pc.num_arrays = config_.num_arrays;
  pc.shape = config_.shape;
  pc.clock_mhz = config_.clock_mhz;
  pc.line_width = config_.line_width;
  pc.seed = JobConfig{}.platform_seed;
  platform::EvolvablePlatform scratch(pc);
  const Json::Array& entries = cache->as_array();
  // Reverse order: warm_insert pushes to the MRU end, so iterating the
  // exported MRU-first list backwards reproduces its recency order.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    std::uint64_t key = 0;
    std::uint64_t lane64 = 0;
    const std::string line = it->get_string("genotype", "");
    if (!json_read_u64(it->get("key"), key) ||
        !json_read_u64(it->get("lane"), lane64) || line.empty() ||
        lane64 >= config_.num_arrays) {
      ++loaded.cache_skipped;
      continue;
    }
    evo::Genotype genotype;
    try {
      genotype = evo::deserialize_genotype(line);
    } catch (const std::exception&) {
      ++loaded.cache_skipped;
      continue;
    }
    if (genotype.shape() != config_.shape) {
      ++loaded.cache_skipped;
      continue;
    }
    const auto lane = static_cast<std::size_t>(lane64);
    (void)scratch.configure_array(lane, genotype, 0);
    const std::uint64_t recomputed =
        hash_mix(scratch.configuration_fingerprint(lane), genotype.hash());
    if (recomputed != key) {
      ++loaded.cache_skipped;
      continue;
    }
    cache_.warm_insert(
        key, lane, line,
        std::make_shared<const pe::CompiledArray>(scratch.compile_array(lane)));
    ++loaded.cache_loaded;
  }
  return loaded;
}

}  // namespace ehw::sched
