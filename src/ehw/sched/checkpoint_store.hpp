#pragma once
// Durable mission-checkpoint files: one JSON document pairing a mission
// spec (as a manifest line — the sched vocabulary, deliberately not the
// service protocol's JSON) with a platform::MissionCheckpoint.
//
//   {"format": "mpa-checkpoint-v1",
//    "spec":   "denoise dn0 lanes=2 ...",
//    "checkpoint": { mpa-ckpt-v1 payload }}
//
// Files are written atomically (temp + fsync + rename), so a kill -9 at
// any instant leaves either the previous or the new checkpoint on disk,
// never a torn one.

#include <string>

#include "ehw/platform/checkpoint.hpp"
#include "ehw/sched/missions.hpp"

namespace ehw::sched {

/// Serializes (spec, checkpoint) to `path` atomically. Returns "" on
/// success, else the I/O error.
[[nodiscard]] std::string save_mission_checkpoint(
    const std::string& path, const MissionSpec& spec,
    const platform::MissionCheckpoint& checkpoint);

/// Loads a checkpoint file; fills both outputs. Returns "" on success,
/// else a description (missing file, bad JSON, malformed spec/payload).
[[nodiscard]] std::string load_mission_checkpoint(
    const std::string& path, MissionSpec& spec,
    platform::MissionCheckpoint& checkpoint);

}  // namespace ehw::sched
