#pragma once
// Pending-job queue for the ArrayPool: priority with aging fairness and
// capacity-aware (backfilling) admission.
//
// Policy, applied on every successful admission, fully deterministic:
//   * the ticket with the highest EFFECTIVE priority wins; ties go to the
//     earlier submission (FIFO). Effective priority = static priority +
//     age / aging_rounds, where age counts admissions that happened while
//     the ticket waited — so any starved job eventually outranks a stream
//     of fresher high-priority ones;
//   * a ticket only pops when its lane demand fits the free arrays. When
//     the top ticket does NOT fit, smaller tickets may backfill around it
//     — until the top ticket has waited starvation_age admissions, after
//     which backfilling stops and the pool drains until the big job fits
//     (head-of-line protection for wide missions).
//
// The queue is a plain data structure (no locking): ArrayPool calls it
// under its own mutex, and the simulated-schedule replay instantiates a
// second queue with the same tickets to compute the policy's plan over
// the whole batch in simulated time (live admission can differ when jobs
// trickle in over host time — an early job is admitted before a
// later-submitted higher-priority one exists; mission results never
// depend on admission order).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ehw::sched {

struct JobTicket {
  std::uint64_t id = 0;        // pool-assigned, == submission sequence
  std::string name;
  std::size_t lanes = 1;       // arrays the job needs for its duration
  int priority = 0;            // higher admits earlier
};

class JobQueue {
 public:
  explicit JobQueue(std::uint64_t aging_rounds = 4,
                    std::uint64_t starvation_age = 16);

  void push(JobTicket ticket);

  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }

  /// Pops the next ticket to admit given `free_arrays`, per the policy
  /// above, or nullopt when nothing may start (nothing fits, or the top
  /// ticket is starved and must not be backfilled around). Every ticket
  /// left waiting by a successful pop gains one unit of age.
  [[nodiscard]] std::optional<JobTicket> pop_admissible(
      std::size_t free_arrays);

  /// Removes and returns every pending ticket whose lane demand exceeds
  /// `max_lanes`. Used when quarantine shrinks the pool's healthy
  /// capacity below what a queued job needs: such a ticket could wait
  /// forever, so the pool fails it cleanly instead.
  [[nodiscard]] std::vector<JobTicket> evict_wider_than(
      std::size_t max_lanes);

  /// Effective priority a ticket currently queued would be ranked with
  /// (exposed for tests and schedule introspection).
  [[nodiscard]] int effective_priority(const JobTicket& ticket,
                                       std::uint64_t age) const noexcept {
    return ticket.priority + static_cast<int>(age / aging_rounds_);
  }

 private:
  struct Pending {
    JobTicket ticket;
    std::uint64_t age = 0;  // admissions that happened while waiting
  };

  /// True when a ranks strictly ahead of b.
  [[nodiscard]] bool ranks_before(const Pending& a,
                                  const Pending& b) const noexcept;

  std::uint64_t aging_rounds_;
  std::uint64_t starvation_age_;
  std::vector<Pending> pending_;  // submission order (ids ascend)
};

}  // namespace ehw::sched
