#include "ehw/sched/compiled_cache.hpp"

namespace ehw::sched {

std::shared_ptr<const pe::CompiledArray> CompiledArrayCache::get_or_compile(
    std::uint64_t key, const CompileFn& compile, bool* was_hit) {
  if (capacity_ == 0) {
    {
      std::lock_guard lock(mutex_);
      ++stats_.misses;
    }
    if (was_hit != nullptr) *was_hit = false;
    return std::make_shared<const pe::CompiledArray>(compile());
  }

  {
    std::lock_guard lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      if (was_hit != nullptr) *was_hit = true;
      return it->second.value;
    }
    ++stats_.misses;
  }
  if (was_hit != nullptr) *was_hit = false;

  // Compile outside the lock: a miss must not serialize other missions.
  auto value = std::make_shared<const pe::CompiledArray>(compile());

  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent miss inserted first; adopt its (behaviourally
    // identical) instance so everyone shares one copy.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.value;
  }
  lru_.push_front(key);
  index_.emplace(key, Entry{value, lru_.begin()});
  while (index_.size() > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  return value;
}

std::size_t CompiledArrayCache::size() const {
  std::lock_guard lock(mutex_);
  return index_.size();
}

CacheStats CompiledArrayCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void CompiledArrayCache::clear() {
  std::lock_guard lock(mutex_);
  index_.clear();
  lru_.clear();
}

}  // namespace ehw::sched
