#include "ehw/sched/compiled_cache.hpp"

namespace ehw::sched {

std::shared_ptr<const pe::CompiledArray> CompiledArrayCache::get_or_compile(
    std::uint64_t key, const CompileFn& compile, bool* was_hit) {
  if (capacity_ == 0) {
    {
      std::lock_guard lock(mutex_);
      ++stats_.misses;
    }
    if (was_hit != nullptr) *was_hit = false;
    return std::make_shared<const pe::CompiledArray>(compile());
  }

  {
    std::lock_guard lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      if (was_hit != nullptr) *was_hit = true;
      return it->second.value;
    }
    ++stats_.misses;
  }
  if (was_hit != nullptr) *was_hit = false;

  // Compile outside the lock: a miss must not serialize other missions.
  auto value = std::make_shared<const pe::CompiledArray>(compile());

  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent miss inserted first; adopt its (behaviourally
    // identical) instance so everyone shares one copy.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.value;
  }
  lru_.push_front(key);
  index_.emplace(key, Entry{value, lru_.begin(), 0, {}});
  while (index_.size() > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  return value;
}

std::size_t CompiledArrayCache::size() const {
  std::lock_guard lock(mutex_);
  return index_.size();
}

CacheStats CompiledArrayCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void CompiledArrayCache::clear() {
  std::lock_guard lock(mutex_);
  index_.clear();
  lru_.clear();
}

void CompiledArrayCache::note_recipe(std::uint64_t key, std::size_t lane,
                                     std::string genotype_line) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return;  // already evicted (tiny caches)
  it->second.lane = lane;
  it->second.genotype = std::move(genotype_line);
}

std::vector<CacheRecipe> CompiledArrayCache::recipes() const {
  std::lock_guard lock(mutex_);
  std::vector<CacheRecipe> out;
  out.reserve(index_.size());
  for (const std::uint64_t key : lru_) {
    const Entry& entry = index_.at(key);
    if (entry.genotype.empty()) continue;
    out.push_back(CacheRecipe{key, entry.lane, entry.genotype});
  }
  return out;
}

void CompiledArrayCache::warm_insert(
    std::uint64_t key, std::size_t lane, std::string genotype_line,
    std::shared_ptr<const pe::CompiledArray> value) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mutex_);
  if (index_.find(key) != index_.end()) return;
  lru_.push_front(key);
  index_.emplace(key,
                 Entry{std::move(value), lru_.begin(), lane,
                       std::move(genotype_line)});
  while (index_.size() > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace ehw::sched
