#include "ehw/sched/pool_group.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ehw::sched {
namespace {

constexpr const char* kGroupWarmFormatTag = "mpa-warm-group-v1";

void accumulate(ArrayPool::PoolStats& total,
                const ArrayPool::PoolStats& pool) {
  total.num_arrays += pool.num_arrays;
  total.free_arrays += pool.free_arrays;
  total.quarantined += pool.quarantined;
  total.running += pool.running;
  total.queued += pool.queued;
  total.submitted += pool.submitted;
  total.done += pool.done;
  total.failed += pool.failed;
  total.cancelled += pool.cancelled;
  total.preempted += pool.preempted;
  total.deadline_expired += pool.deadline_expired;
}

}  // namespace

PoolGroup::PoolGroup(PoolGroupConfig config) : config_(std::move(config)) {
  if (config_.pools == 0) {
    throw std::invalid_argument("PoolGroup needs at least one pool");
  }
  pools_.reserve(config_.pools);
  for (std::size_t i = 0; i < config_.pools; ++i) {
    pools_.push_back(std::make_unique<ArrayPool>(config_.pool));
  }
}

PoolGroup::Placed PoolGroup::submit(const MissionSpec& spec, JobConfig config,
                                    ArrayPool::JobBody body) {
  Placed placed;
  if (pools_.size() == 1) {
    // Single-pool groups skip scoring but still record the fingerprint
    // so placement stats stay meaningful across a later scale-up.
    std::vector<PlacementTarget> targets(1);
    targets[0].total_arrays = config_.pool.num_arrays;
    targets[0].free_arrays = config_.pool.num_arrays;
    const PlacementPolicy::Decision decision =
        placement_.place(PlacementPolicy::fingerprint(spec), config.lanes,
                         targets);
    placed.affinity_hit = decision.affinity_hit;
    placed.runner = pools_[0]->submit(std::move(config), std::move(body));
    return placed;
  }
  std::vector<PlacementTarget> targets(pools_.size());
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    const ArrayPool::PoolStats stats = pools_[i]->quick_stats();
    targets[i].total_arrays = stats.num_arrays;
    targets[i].free_arrays = stats.free_arrays;
    targets[i].quarantined = stats.quarantined;
    targets[i].queued = stats.queued;
    targets[i].running = stats.running;
  }
  const PlacementPolicy::Decision decision = placement_.place(
      PlacementPolicy::fingerprint(spec), config.lanes, targets);
  if (decision.ok) {
    placed.pool = decision.target;
    placed.affinity_hit = decision.affinity_hit;
  } else {
    // Nothing healthy enough: hand the job to the least-degraded pool,
    // whose unsatisfiable-eviction path fails it with the same error a
    // single pool would give.
    std::size_t best = 0;
    for (std::size_t i = 1; i < pools_.size(); ++i) {
      if (targets[i].healthy() > targets[best].healthy()) best = i;
    }
    placed.pool = best;
  }
  placed.runner =
      pools_[placed.pool]->submit(std::move(config), std::move(body));
  return placed;
}

void PoolGroup::wait_all() {
  for (const auto& pool : pools_) pool->wait_all();
}

std::size_t PoolGroup::reap_finished() {
  std::size_t reaped = 0;
  for (const auto& pool : pools_) reaped += pool->reap_finished();
  return reaped;
}

std::size_t PoolGroup::max_healthy_arrays() const {
  std::size_t best = 0;
  for (const auto& pool : pools_) {
    best = std::max(best, pool->healthy_arrays());
  }
  return best;
}

PoolGroup::GroupStats PoolGroup::stats() const {
  GroupStats stats;
  stats.per_pool.reserve(pools_.size());
  for (const auto& pool : pools_) {
    stats.per_pool.push_back(pool->quick_stats());
    accumulate(stats.total, stats.per_pool.back());
  }
  return stats;
}

CacheStats PoolGroup::cache_stats() const {
  CacheStats total;
  for (const auto& pool : pools_) {
    const CacheStats stats = pool->cache_stats();
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.evictions += stats.evictions;
  }
  return total;
}

evo::FitnessMemoStats PoolGroup::memo_stats() const {
  evo::FitnessMemoStats total;
  for (const auto& pool : pools_) {
    const evo::FitnessMemoStats stats = pool->memo_stats();
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.evictions += stats.evictions;
  }
  return total;
}

std::vector<PoolGroup::GroupArrayHealth> PoolGroup::array_health() const {
  std::vector<GroupArrayHealth> all;
  all.reserve(total_arrays());
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    for (const ArrayPool::ArrayHealth& health : pools_[i]->array_health()) {
      all.push_back(GroupArrayHealth{i, health});
    }
  }
  return all;
}

Json PoolGroup::export_warm_state() const {
  Json pools = Json::array();
  for (const auto& pool : pools_) {
    pools.push_back(pool->export_warm_state());
  }
  Json state = Json::object();
  state.set("format", kGroupWarmFormatTag);
  state.set("pools", std::move(pools));
  return state;
}

ArrayPool::WarmLoadStats PoolGroup::import_warm_state(const Json& state) {
  ArrayPool::WarmLoadStats total;
  if (!state.is_object()) return total;
  const std::string format = state.get_string("format", "");
  if (format == kGroupWarmFormatTag) {
    const Json* pools = state.get("pools");
    if (pools == nullptr || !pools->is_array()) return total;
    const std::size_t count =
        std::min(pools->as_array().size(), pools_.size());
    for (std::size_t i = 0; i < count; ++i) {
      const ArrayPool::WarmLoadStats loaded =
          pools_[i]->import_warm_state(pools->as_array()[i]);
      total.memo_loaded += loaded.memo_loaded;
      total.cache_loaded += loaded.cache_loaded;
      total.cache_skipped += loaded.cache_skipped;
    }
    return total;
  }
  // Single-pool format from a pre-group daemon: seed pool 0.
  return pools_[0]->import_warm_state(state);
}

}  // namespace ehw::sched
