#include "ehw/sched/job_queue.hpp"

#include "ehw/common/assert.hpp"

namespace ehw::sched {

JobQueue::JobQueue(std::uint64_t aging_rounds, std::uint64_t starvation_age)
    : aging_rounds_(aging_rounds), starvation_age_(starvation_age) {
  EHW_REQUIRE(aging_rounds_ > 0, "aging_rounds must be positive");
}

void JobQueue::push(JobTicket ticket) {
  if (!pending_.empty()) {
    EHW_REQUIRE(ticket.id > pending_.back().ticket.id,
                "tickets must be pushed in submission order");
  }
  pending_.push_back(Pending{std::move(ticket), 0});
}

bool JobQueue::ranks_before(const Pending& a, const Pending& b) const noexcept {
  const int ea = effective_priority(a.ticket, a.age);
  const int eb = effective_priority(b.ticket, b.age);
  if (ea != eb) return ea > eb;
  return a.ticket.id < b.ticket.id;  // FIFO among equals
}

std::optional<JobTicket> JobQueue::pop_admissible(std::size_t free_arrays) {
  if (pending_.empty()) return std::nullopt;

  // Rank every waiting ticket; find the overall top and the best fitting.
  std::size_t top = 0;
  std::size_t best_fit = pending_.size();  // sentinel: none fits
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (ranks_before(pending_[i], pending_[top])) top = i;
    if (pending_[i].ticket.lanes <= free_arrays &&
        (best_fit == pending_.size() ||
         ranks_before(pending_[i], pending_[best_fit]))) {
      best_fit = i;
    }
  }
  if (best_fit == pending_.size()) return std::nullopt;  // nothing fits

  // Head-of-line protection: once the top ticket has starved long enough,
  // stop backfilling smaller jobs around it and drain until it fits.
  if (best_fit != top && pending_[top].age >= starvation_age_) {
    return std::nullopt;
  }

  JobTicket admitted = std::move(pending_[best_fit].ticket);
  pending_.erase(pending_.begin() +
                 static_cast<std::ptrdiff_t>(best_fit));
  for (Pending& p : pending_) ++p.age;
  return admitted;
}

std::vector<JobTicket> JobQueue::evict_wider_than(std::size_t max_lanes) {
  std::vector<JobTicket> evicted;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->ticket.lanes > max_lanes) {
      evicted.push_back(std::move(it->ticket));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace ehw::sched
