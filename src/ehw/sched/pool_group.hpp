#pragma once
// PoolGroup — N ArrayPools behind one submit surface, routed by a
// PlacementPolicy.
//
// Why shard at all: one ArrayPool serializes every submit, admission and
// finish through a single mutex, and shares ONE FitnessMemo + compiled
// cache across every mission it hosts — a working set bigger than those
// caches thrashes them cyclically. A group gives each pool its own
// queue, its own locks and its own warm state, and the placement policy
// keeps repeat mission fingerprints on the pool that already holds
// their memo/cache entries. Simulated results never depend on placement
// (ArrayPool's bit-identity guarantee), so routing is free to chase
// capacity and warmth.
//
// The group is also the in-process twin of the federated deployment:
// svc::Forwarder routes the same PlacementTarget snapshots across
// backend daemons; PoolGroup routes them across in-process pools. One
// policy, two radii.
//
// Stats: stats() aggregates ArrayPool::quick_stats (lock-free atomic
// mirrors) — high-rate pollers (the forwarder, `mpa stats`) never
// serialize against job bookkeeping under the pool mutexes.

#include <cstdint>
#include <memory>
#include <vector>

#include "ehw/sched/array_pool.hpp"
#include "ehw/sched/placement.hpp"

namespace ehw::sched {

struct PoolGroupConfig {
  /// Member pools; each is built from `pool` (so `pool.num_arrays` is
  /// the per-pool array count, and the group's total capacity is
  /// pools * num_arrays).
  std::size_t pools = 1;
  PoolConfig pool;
};

class PoolGroup {
 public:
  explicit PoolGroup(PoolGroupConfig config);

  PoolGroup(const PoolGroup&) = delete;
  PoolGroup& operator=(const PoolGroup&) = delete;

  [[nodiscard]] std::size_t pool_count() const noexcept {
    return pools_.size();
  }
  [[nodiscard]] ArrayPool& pool(std::size_t index) { return *pools_[index]; }
  [[nodiscard]] const ArrayPool& pool(std::size_t index) const {
    return *pools_[index];
  }
  /// Lane cap for any single mission (a lease never spans pools — the
  /// slice must be one platform with one timeline).
  [[nodiscard]] std::size_t arrays_per_pool() const noexcept {
    return config_.pool.num_arrays;
  }
  [[nodiscard]] std::size_t total_arrays() const noexcept {
    return pools_.size() * config_.pool.num_arrays;
  }

  struct Placed {
    std::shared_ptr<MissionRunner> runner;
    std::size_t pool = 0;
    bool affinity_hit = false;
  };
  /// Places `spec` (the fingerprint source) on the best pool and submits
  /// `config`/`body` there. `config.lanes` governs capacity (it may be a
  /// migration grant narrower than spec.lanes). When no pool's healthy
  /// capacity can hold the lease, the least-degraded pool still takes
  /// the job so ArrayPool's unsatisfiable-eviction path fails it with
  /// its normal error — group and single-pool semantics stay identical.
  Placed submit(const MissionSpec& spec, JobConfig config,
                ArrayPool::JobBody body);

  void wait_all();
  std::size_t reap_finished();

  /// Largest healthy capacity any single pool offers (migration sizing).
  [[nodiscard]] std::size_t max_healthy_arrays() const;

  struct GroupStats {
    ArrayPool::PoolStats total;
    std::vector<ArrayPool::PoolStats> per_pool;
  };
  /// Aggregated + per-pool counters from the pools' lock-free stat
  /// mirrors — never takes a pool mutex.
  [[nodiscard]] GroupStats stats() const;

  [[nodiscard]] CacheStats cache_stats() const;
  [[nodiscard]] evo::FitnessMemoStats memo_stats() const;

  struct GroupArrayHealth {
    std::size_t pool = 0;
    ArrayPool::ArrayHealth health;
  };
  [[nodiscard]] std::vector<GroupArrayHealth> array_health() const;

  /// Warm-state round trip: {"format":"mpa-warm-group-v1","pools":[...]}
  /// with one ArrayPool warm object per pool. import accepts the group
  /// format (per-index, extra entries dropped when the group shrank) and
  /// the single-pool "mpa-warm-v1" format (loaded into pool 0), so a
  /// daemon upgraded from one pool keeps its warmth.
  [[nodiscard]] Json export_warm_state() const;
  ArrayPool::WarmLoadStats import_warm_state(const Json& state);

  [[nodiscard]] PlacementPolicy::Stats placement_stats() const {
    return placement_.stats();
  }
  [[nodiscard]] PlacementPolicy& placement() noexcept { return placement_; }

 private:
  PoolGroupConfig config_;
  std::vector<std::unique_ptr<ArrayPool>> pools_;
  PlacementPolicy placement_;
};

}  // namespace ehw::sched
