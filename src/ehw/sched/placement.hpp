#pragma once
// PlacementPolicy — scores candidate pools (or federated backends) for a
// mission and remembers where each mission *fingerprint* last ran.
//
// Both scale-out layers route through this one abstraction: PoolGroup
// places submits across its in-process ArrayPools, and svc::Forwarder
// places them across backend daemons using exactly the same scoring fed
// by stats/health polls. Two signals matter:
//
//   * free capacity — a pool with idle arrays starts the mission now; a
//     busy pool queues it. Quarantined lanes shrink a pool's usable
//     capacity and push fresh work elsewhere.
//   * cache locality — ArrayPool shares a FitnessMemo keyed by frame-set
//     content id and a compiled-array cache keyed by configuration
//     fingerprint + genotype hash. Re-running a mission whose frames and
//     candidate stream a pool has already measured skips frame streaming
//     (memo hits) and recompilation (cache hits) entirely. The policy
//     keys that warmth by a *fingerprint*: a content hash over every
//     spec field that determines the frame set and the candidate stream
//     (kind, size, scene seed, noise, ES parameters, seeds — NOT the
//     mission name), so repeat missions land where their warm state
//     lives.
//
// Warmth affects host speed only, never simulated results — the
// scheduler's bit-identity guarantee holds wherever a mission is placed,
// which is what makes this policy free to chase throughput.
//
// Determinism: scoring is pure arithmetic over the target snapshots; no
// randomness, no clocks. Ties break toward the target hosting the fewest
// warm fingerprints (then the lowest index), so cold keys spread their
// working sets across identical-looking targets instead of piling onto
// index 0. Thread-safe (one mutex around the affinity table).

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ehw/sched/missions.hpp"

namespace ehw::sched {

/// One candidate pool/backend as the policy sees it: a cheap counter
/// snapshot (ArrayPool::quick_stats for in-process pools, the last
/// stats/health poll for federated backends).
struct PlacementTarget {
  std::size_t total_arrays = 0;
  std::size_t free_arrays = 0;
  std::size_t quarantined = 0;
  /// Jobs admitted but not yet holding arrays.
  std::size_t queued = 0;
  std::size_t running = 0;
  /// Federation: the backend answered its last poll. Unreachable targets
  /// are never chosen.
  bool reachable = true;

  [[nodiscard]] std::size_t healthy() const noexcept {
    return total_arrays > quarantined ? total_arrays - quarantined : 0;
  }
};

class PlacementPolicy {
 public:
  /// `affinity_capacity` caps the fingerprint table (LRU eviction past
  /// it); 0 disables locality tracking (pure capacity scoring).
  explicit PlacementPolicy(std::size_t affinity_capacity = 4096);

  PlacementPolicy(const PlacementPolicy&) = delete;
  PlacementPolicy& operator=(const PlacementPolicy&) = delete;

  /// Content fingerprint of the warm state a spec's mission builds:
  /// every field that shapes the frame set or the candidate stream.
  /// Identical fingerprints hit each other's memo/cache entries;
  /// the mission name deliberately does not participate.
  [[nodiscard]] static std::uint64_t fingerprint(const MissionSpec& spec);

  struct Decision {
    bool ok = false;
    std::size_t target = 0;
    double score = 0.0;
    /// The chosen target is where this fingerprint last ran.
    bool affinity_hit = false;
    /// The fingerprint had a warm target but capacity pushed the mission
    /// elsewhere (the affinity moves with it).
    bool spilled = false;
    std::string error;  // when !ok
  };

  /// Picks the best target for a mission needing `lanes` arrays and
  /// records the placement against `key` (= fingerprint(spec)).
  /// Targets that are unreachable or whose healthy capacity cannot ever
  /// hold `lanes` are skipped; if nothing remains, ok=false.
  [[nodiscard]] Decision place(std::uint64_t key, std::size_t lanes,
                               const std::vector<PlacementTarget>& targets);

  /// Drops every affinity pointing at `target` (a backend died — its
  /// warm state is gone; do not steer repeats at the corpse).
  void forget_target(std::size_t target);

  struct Stats {
    std::uint64_t placed = 0;
    std::uint64_t affinity_hits = 0;
    std::uint64_t spills = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Score one target for a `lanes`-wide mission; `warm` marks the
  /// target as the fingerprint's remembered home. Exposed for tests and
  /// the placement micro-bench; place() is this plus argmax + recording.
  [[nodiscard]] static double score(const PlacementTarget& target,
                                    std::size_t lanes, bool warm);

  /// True when every target is unreachable (cold) or already has work
  /// STACKED in its queue (saturated) — a new `lanes`-wide mission could
  /// only land behind someone else's backlog. Running at capacity with
  /// an empty queue is busy, not saturated: those lanes free up on their
  /// own. Brownout admission sheds low-priority submits while this
  /// holds.
  [[nodiscard]] static bool saturated(
      const std::vector<PlacementTarget>& targets, std::size_t lanes);

 private:
  std::size_t affinity_capacity_;
  mutable std::mutex mutex_;
  /// fingerprint -> (target index, LRU position).
  struct Entry {
    std::size_t target = 0;
    std::list<std::uint64_t>::iterator lru_pos;
  };
  std::list<std::uint64_t> lru_;  // front = most recently placed
  /// Warm fingerprints currently bound per target (tie-break metric);
  /// grown on demand to the largest target vector seen.
  std::vector<std::size_t> bound_;
  std::unordered_map<std::uint64_t, Entry> affinity_;
  Stats stats_;
};

}  // namespace ehw::sched
