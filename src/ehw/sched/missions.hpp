#pragma once
// Standard mission kinds and the batch job manifest.
//
// A MissionSpec describes one self-contained workload over deterministic
// synthetic imagery (pure in its parameters, so pooled and standalone
// runs see identical inputs):
//   denoise     evolve a salt&pepper denoiser   (train: noisy, ref: clean)
//   edge        evolve an edge detector         (ref: Sobel magnitude)
//   morphology  evolve a dilation filter        (ref: 3x3 max / dilate)
//   cascade     collaborative cascaded evolution over `lanes` stages
//
// Manifest format (one job per line; '#' starts a comment):
//   <kind> <name> [key=value ...]
// keys: lanes, priority, generations, size, noise, rate, lambda, seed,
//       scene-seed, two-level, merged, interleaved, deadline-ms
// e.g.
//   denoise dn0 lanes=3 generations=300 noise=0.3 seed=5
//   cascade ca0 lanes=3 generations=80 interleaved=1
//
// The same spec runs as an ArrayPool job (make_job_body) or standalone on
// a dedicated platform (run_spec_standalone) — the determinism suite
// asserts the two produce bit-identical results.

#include <iosfwd>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "ehw/sched/array_pool.hpp"

namespace ehw::sched {

enum class MissionKind : std::uint8_t {
  kDenoise,
  kEdge,
  kMorphology,
  kCascade,
};

[[nodiscard]] const char* kind_name(MissionKind kind) noexcept;

struct MissionSpec {
  MissionKind kind = MissionKind::kDenoise;
  std::string name = "mission";
  std::size_t lanes = 1;
  int priority = 0;
  /// Synthetic scene side length (images are size x size).
  std::size_t size = 32;
  std::uint64_t scene_seed = 7;
  /// Salt&pepper density for the noisy kinds.
  double noise = 0.3;
  Generation generations = 200;
  std::size_t lambda = 9;
  std::size_t mutation_rate = 3;
  bool two_level = false;
  std::uint64_t seed = 1;
  /// Cascade options (ignored by the other kinds).
  bool merged_fitness = false;
  bool interleaved = false;
  /// Host wall-clock deadline in milliseconds (0 = none): a pooled job
  /// still running past it is cancelled and reported failed.
  std::uint64_t deadline_ms = 0;
};

/// True when `word` names a mission kind (and sets `kind`).
[[nodiscard]] bool parse_kind(const std::string& word,
                              MissionKind& kind) noexcept;

/// Applies one option from the manifest key vocabulary (lanes, priority,
/// generations, size, noise, rate, lambda, seed, scene-seed, two-level,
/// merged, interleaved, deadline-ms) to the spec. Returns "" on success, otherwise an
/// error message (unknown key, unparsable or out-of-range value). Shared
/// by the manifest parser and the svc submit payload so every entry point
/// speaks the same vocabulary with the same validation.
[[nodiscard]] std::string apply_spec_option(MissionSpec& spec,
                                            const std::string& key,
                                            const std::string& value);

/// Range-checks a fully built spec; "" when valid.
[[nodiscard]] std::string validate_spec(const MissionSpec& spec);

/// Parses a manifest; throws std::runtime_error naming the offending line
/// number on malformed input (unknown kinds/keys, bad or out-of-range
/// values, missing names, duplicate mission names) — nothing is ever
/// silently skipped.
[[nodiscard]] std::vector<MissionSpec> parse_manifest(std::istream& in);

/// The spec's train/reference image pair (deterministic).
struct MissionImages {
  img::Image train;
  img::Image reference;
};
[[nodiscard]] MissionImages make_mission_images(const MissionSpec& spec);

struct MissionImagesCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// Pool-local LRU over make_mission_images: frames are a pure function of
/// the frame-shaping spec fields (kind, size, scene seed, noise, seed),
/// so repeat fingerprints skip scene synthesis + degradation entirely —
/// the third kind of warm state (after the fitness memo and the compiled
/// cache) that placement affinity keeps co-located. Entries are shared
/// read-only snapshots; a hit serves bit-identical frames by
/// construction. Thread-safe; capacity 0 disables.
class MissionImagesCache {
 public:
  explicit MissionImagesCache(std::size_t capacity);

  /// The spec's frames, from cache when warm (computing and inserting on
  /// miss). Never returns nullptr.
  [[nodiscard]] std::shared_ptr<const MissionImages> get_or_make(
      const MissionSpec& spec);

  [[nodiscard]] MissionImagesCacheStats stats() const;

 private:
  /// Every field make_mission_images reads, compared exactly (noise by
  /// bit pattern) — no hashing, so no collision risk.
  using Key = std::tuple<int, std::size_t, std::uint64_t, std::uint64_t,
                         std::uint64_t>;
  [[nodiscard]] static Key key_of(const MissionSpec& spec);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  struct Entry {
    std::shared_ptr<const MissionImages> images;
    std::list<Key>::iterator lru_pos;
  };
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // front = most recently used
  MissionImagesCacheStats stats_;
};

/// Re-emits a spec as one manifest line ("<kind> <name> key=value ...",
/// every key explicit). parse_manifest of the line reproduces the spec
/// exactly; checkpoint files embed specs in this vocabulary so the sched
/// layer needs no knowledge of the service protocol.
[[nodiscard]] std::string spec_to_manifest_line(const MissionSpec& spec);

/// Parses one manifest line into `spec`. Returns "" on success, else the
/// parse error (never throws — callers are recovery paths).
[[nodiscard]] std::string spec_from_manifest_line(const std::string& line,
                                                  MissionSpec& spec);

/// Durability options for a mission run: checkpoint cadence/preemption
/// and an optional saved state to resume from (see
/// platform/checkpoint.hpp for the underlying policy semantics). The
/// shared_ptr keeps the resume state alive for the lifetime of a
/// deferred job body.
struct MissionCheckpointing {
  Generation every = 0;
  Generation preempt_after = 0;
  std::function<void(const platform::MissionCheckpoint&)> sink;
  std::shared_ptr<const platform::MissionCheckpoint> resume;
  /// Polled at generation boundaries; true asks the driver to emit a
  /// final checkpoint and stop (see CheckpointPolicy::should_preempt).
  std::function<bool()> should_preempt;

  [[nodiscard]] bool active() const noexcept {
    return every != 0 || preempt_after != 0 || resume != nullptr ||
           static_cast<bool>(sink) || static_cast<bool>(should_preempt);
  }
};

/// Pool submission helpers.
[[nodiscard]] JobConfig make_job_config(const MissionSpec& spec);
[[nodiscard]] ArrayPool::JobBody make_job_body(MissionSpec spec);
/// As above, but with durability: the body checkpoints per `ck` and
/// resumes from ck.resume when set.
[[nodiscard]] ArrayPool::JobBody make_job_body(MissionSpec spec,
                                               MissionCheckpointing ck);

/// Drives the spec through any wave executor (a pool lease or a direct
/// one); fills the outcome like the pool job body does (minus the cache
/// counters, which belong to the pool).
void run_spec(platform::WaveExecutor& executor, const MissionSpec& spec,
              JobOutcome& outcome);
/// Durable variant. `images` (optional) serves the mission's frames from
/// a shared cache — bit-identical to computing them fresh.
void run_spec(platform::WaveExecutor& executor, const MissionSpec& spec,
              JobOutcome& outcome, const MissionCheckpointing& ck,
              MissionImagesCache* images = nullptr);

/// Reference run on a dedicated standalone platform (the pre-scheduler
/// behaviour): the bit-identical baseline for multiplexed runs.
[[nodiscard]] JobOutcome run_spec_standalone(const MissionSpec& spec,
                                             ThreadPool* host_pool = nullptr);
/// Durable variant (used by `mpa checkpoint` / `mpa restore`).
[[nodiscard]] JobOutcome run_spec_standalone(const MissionSpec& spec,
                                             ThreadPool* host_pool,
                                             const MissionCheckpointing& ck);

}  // namespace ehw::sched
