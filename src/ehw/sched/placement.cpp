#include "ehw/sched/placement.hpp"

#include <bit>
#include <cstring>

#include "ehw/common/rng.hpp"

namespace ehw::sched {
namespace {

/// Exact bit pattern of a double (noise participates in the fingerprint
/// bit-for-bit, the same way it round-trips through manifests).
std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace

PlacementPolicy::PlacementPolicy(std::size_t affinity_capacity)
    : affinity_capacity_(affinity_capacity) {}

std::uint64_t PlacementPolicy::fingerprint(const MissionSpec& spec) {
  // Every field that shapes the frame set (kind/size/scene_seed/noise +
  // the noise RNG's seed) or the candidate stream (ES parameters and
  // seed) — and lanes, because the per-lane genotype streams differ.
  std::uint64_t key = hash_mix(0x9E3779B97F4A7C15ULL,
                               static_cast<std::uint64_t>(spec.kind),
                               spec.size, spec.scene_seed);
  key = hash_mix(key, double_bits(spec.noise), spec.generations, spec.seed);
  key = hash_mix(key, spec.lambda, spec.mutation_rate, spec.lanes);
  key = hash_mix(key, spec.two_level ? 1 : 0, spec.merged_fitness ? 1 : 0,
                 spec.interleaved ? 1 : 0);
  return key;
}

double PlacementPolicy::score(const PlacementTarget& target, std::size_t lanes,
                              bool warm) {
  const double total = target.total_arrays == 0
                           ? 1.0
                           : static_cast<double>(target.total_arrays);
  const double free_frac = static_cast<double>(target.free_arrays) / total;
  const double load_frac =
      static_cast<double>(target.queued + target.running) / total;
  const double quarantined_frac =
      static_cast<double>(target.quarantined) / total;
  const bool fits_now = target.free_arrays >= lanes;
  // Capacity dominates among cold targets: an idle pool starts the
  // mission immediately (+100 band), a busy one queues it (sub-10 band).
  // Degraded pools are pushed down so fresh work prefers intact ones.
  double value = (fits_now ? 100.0 : 0.0) + 10.0 * free_frac -
                 4.0 * load_frac - 25.0 * quarantined_frac;
  if (warm) {
    // Warm state is worth waiting behind the pool's queue — but not
    // worth queueing when another pool could start NOW: +50 keeps a
    // fitting warm pool ahead of every cold one, +10 keeps a busy warm
    // pool ahead of equally busy cold ones while an idle cold pool
    // (+100 band) still wins and takes the affinity with it (spill).
    value += fits_now ? 50.0 : 10.0;
  }
  return value;
}

PlacementPolicy::Decision PlacementPolicy::place(
    std::uint64_t key, std::size_t lanes,
    const std::vector<PlacementTarget>& targets) {
  std::lock_guard lock(mutex_);
  Decision decision;
  std::size_t warm_target = targets.size();  // sentinel: no affinity
  const auto known = affinity_.find(key);
  if (known != affinity_.end()) warm_target = known->second.target;

  if (bound_.size() < targets.size()) bound_.resize(targets.size(), 0);
  bool found = false;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const PlacementTarget& target = targets[i];
    if (!target.reachable) continue;
    if (target.healthy() < lanes) continue;  // can never hold the lease
    const double value = score(target, lanes, i == warm_target);
    // Ties (identical capacity snapshots — common when submits are
    // sequential and each mission finishes before the next arrives) break
    // toward the target hosting the fewest warm fingerprints, so cold
    // keys spread their working sets instead of piling on index 0.
    if (!found || value > decision.score ||
        (value == decision.score && bound_[i] < bound_[decision.target])) {
      found = true;
      decision.target = i;
      decision.score = value;
    }
  }
  if (!found) {
    decision.error = "no reachable pool can host " + std::to_string(lanes) +
                     " lane(s)";
    return decision;
  }
  decision.ok = true;
  decision.affinity_hit = decision.target == warm_target;
  decision.spilled =
      warm_target != targets.size() && decision.target != warm_target;
  ++stats_.placed;
  if (decision.affinity_hit) ++stats_.affinity_hits;
  if (decision.spilled) ++stats_.spills;

  // Remember (or move) the fingerprint's home: the warm state now grows
  // wherever the mission actually runs.
  if (affinity_capacity_ != 0) {
    if (known != affinity_.end()) {
      if (known->second.target != decision.target) {
        --bound_[known->second.target];
        ++bound_[decision.target];
        known->second.target = decision.target;
      }
      lru_.splice(lru_.begin(), lru_, known->second.lru_pos);
    } else {
      lru_.push_front(key);
      affinity_.emplace(key, Entry{decision.target, lru_.begin()});
      ++bound_[decision.target];
      while (affinity_.size() > affinity_capacity_) {
        const auto evicted = affinity_.find(lru_.back());
        if (evicted != affinity_.end()) {
          --bound_[evicted->second.target];
          affinity_.erase(evicted);
        }
        lru_.pop_back();
      }
    }
  }
  return decision;
}

bool PlacementPolicy::saturated(const std::vector<PlacementTarget>& targets,
                                std::size_t lanes) {
  for (const PlacementTarget& target : targets) {
    if (!target.reachable) continue;      // cold: can't take anything
    if (target.healthy() < lanes) continue;  // can never hold the lease
    // An empty queue means the next submit is at most one mission away
    // from lanes — running-at-capacity is busy, not saturated. Only a
    // target that already has work STACKED counts toward brownout.
    if (target.queued == 0) return false;
  }
  return true;
}

void PlacementPolicy::forget_target(std::size_t target) {
  std::lock_guard lock(mutex_);
  for (auto it = affinity_.begin(); it != affinity_.end();) {
    if (it->second.target == target) {
      lru_.erase(it->second.lru_pos);
      it = affinity_.erase(it);
    } else {
      ++it;
    }
  }
  if (target < bound_.size()) bound_[target] = 0;
}

PlacementPolicy::Stats PlacementPolicy::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace ehw::sched
