#pragma once
// Genotype-keyed compiled-array cache shared by every mission on an
// ArrayPool. The key is EvolvablePlatform::configuration_fingerprint — a
// content hash of the genotype as materialized in configuration memory
// plus the defect map and ACB registers — so identical candidates reached
// by different missions, generations or neutral-drift revisits never
// recompile. Values are shared_ptr<const CompiledArray>: CompiledArray
// evaluation is const and allocation-free, so one instance serves any
// number of concurrently evaluating missions; eviction only drops the
// cache's reference, never an array a wave is still streaming through.
//
// Thread safety: the index is mutex-guarded; compilation runs OUTSIDE the
// lock so a slow compile never serializes unrelated missions. Two threads
// missing the same key may both compile — the first insert wins and the
// loser adopts it, keeping every caller behaviourally identical.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ehw/pe/compiled.hpp"

namespace ehw::sched {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// How to rebuild one cached compiled array on a fresh pool: the
/// slice-local lane it was compiled for and the genotype line configured
/// there. The key is re-derived (never trusted) on import — a recipe
/// whose recomputed key differs (different platform seed, damaged lane)
/// is silently dropped, so warm-state files can never poison results.
struct CacheRecipe {
  std::uint64_t key = 0;
  std::size_t lane = 0;
  std::string genotype;  // serialize_genotype line
};

class CompiledArrayCache {
 public:
  /// `capacity` is the entry cap (LRU eviction beyond it); 0 disables
  /// caching entirely (every lookup compiles and counts a miss).
  explicit CompiledArrayCache(std::size_t capacity) : capacity_(capacity) {}

  CompiledArrayCache(const CompiledArrayCache&) = delete;
  CompiledArrayCache& operator=(const CompiledArrayCache&) = delete;

  using CompileFn = std::function<pe::CompiledArray()>;

  /// Returns the cached array for `key`, or compiles one via `compile`,
  /// inserts it (evicting the least-recently-used entry at capacity) and
  /// returns it. `was_hit` (optional) reports which path was taken.
  [[nodiscard]] std::shared_ptr<const pe::CompiledArray> get_or_compile(
      std::uint64_t key, const CompileFn& compile, bool* was_hit = nullptr);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] CacheStats stats() const;
  void clear();

  /// Records the rebuild recipe for `key` (called by the compile path on
  /// a miss). Recipes ride along with entries: evicting the entry drops
  /// its recipe.
  void note_recipe(std::uint64_t key, std::size_t lane,
                   std::string genotype_line);

  /// Recipes of the currently resident entries, most recently used first
  /// — the persistable image of the cache.
  [[nodiscard]] std::vector<CacheRecipe> recipes() const;

  /// Inserts a pre-compiled value (warm-state import). Counts neither a
  /// hit nor a miss; no-op when caching is disabled or the key is
  /// already resident.
  void warm_insert(std::uint64_t key, std::size_t lane,
                   std::string genotype_line,
                   std::shared_ptr<const pe::CompiledArray> value);

 private:
  struct Entry {
    std::shared_ptr<const pe::CompiledArray> value;
    std::list<std::uint64_t>::iterator lru_pos;
    /// Rebuild recipe; `genotype` empty when never recorded (direct
    /// get_or_compile callers that don't persist).
    std::size_t lane = 0;
    std::string genotype;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, Entry> index_;
  CacheStats stats_;
};

}  // namespace ehw::sched
