#include "ehw/sched/missions.hpp"

#include <cstdio>
#include <cstring>
#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "ehw/img/filters.hpp"
#include "ehw/img/morphology.hpp"
#include "ehw/img/noise.hpp"
#include "ehw/img/synthetic.hpp"

namespace ehw::sched {
namespace {

evo::EsConfig es_config(const MissionSpec& spec) {
  evo::EsConfig es;
  es.lambda = spec.lambda;
  es.mutation_rate = spec.mutation_rate;
  es.two_level = spec.two_level;
  es.lanes = spec.lanes;
  es.generations = spec.generations;
  es.seed = spec.seed;
  return es;
}

[[noreturn]] void manifest_error(std::size_t line, const std::string& what) {
  throw std::runtime_error("manifest line " + std::to_string(line) + ": " +
                           what);
}

/// Strict unsigned parse: std::stoul would silently accept "-1" (it wraps
/// to 2^64-1, sailing past every range check), so digits only.
bool parse_u64(const std::string& value, std::uint64_t& out) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  try {
    out = std::stoull(value);
  } catch (const std::exception&) {
    return false;  // out of range
  }
  return true;
}

}  // namespace

const char* kind_name(MissionKind kind) noexcept {
  switch (kind) {
    case MissionKind::kDenoise: return "denoise";
    case MissionKind::kEdge: return "edge";
    case MissionKind::kMorphology: return "morphology";
    case MissionKind::kCascade: return "cascade";
  }
  return "?";
}

bool parse_kind(const std::string& word, MissionKind& kind) noexcept {
  if (word == "denoise") {
    kind = MissionKind::kDenoise;
  } else if (word == "edge") {
    kind = MissionKind::kEdge;
  } else if (word == "morphology") {
    kind = MissionKind::kMorphology;
  } else if (word == "cascade") {
    kind = MissionKind::kCascade;
  } else {
    return false;
  }
  return true;
}

std::string apply_spec_option(MissionSpec& spec, const std::string& key,
                              const std::string& value) {
  const auto bad_value = [&key, &value] {
    return "bad value for '" + key + "': '" + value + "'";
  };
  std::uint64_t u64 = 0;
  if (key == "lanes") {
    if (!parse_u64(value, u64)) return bad_value();
    spec.lanes = static_cast<std::size_t>(u64);
  } else if (key == "priority") {
    try {
      std::size_t used = 0;
      spec.priority = std::stoi(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
    } catch (const std::exception&) {
      return bad_value();
    }
  } else if (key == "generations") {
    if (!parse_u64(value, u64)) return bad_value();
    spec.generations = static_cast<Generation>(u64);
  } else if (key == "size") {
    if (!parse_u64(value, u64)) return bad_value();
    spec.size = static_cast<std::size_t>(u64);
  } else if (key == "noise") {
    try {
      std::size_t used = 0;
      spec.noise = std::stod(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
    } catch (const std::exception&) {
      return bad_value();
    }
    if (!(spec.noise >= 0.0 && spec.noise <= 1.0)) {
      return "noise must be in [0, 1]";
    }
  } else if (key == "rate") {
    if (!parse_u64(value, u64)) return bad_value();
    spec.mutation_rate = static_cast<std::size_t>(u64);
  } else if (key == "lambda") {
    if (!parse_u64(value, u64)) return bad_value();
    spec.lambda = static_cast<std::size_t>(u64);
  } else if (key == "seed") {
    if (!parse_u64(value, u64)) return bad_value();
    spec.seed = u64;
  } else if (key == "scene-seed") {
    if (!parse_u64(value, u64)) return bad_value();
    spec.scene_seed = u64;
  } else if (key == "two-level") {
    spec.two_level = value != "0";
  } else if (key == "merged") {
    spec.merged_fitness = value != "0";
  } else if (key == "interleaved") {
    spec.interleaved = value != "0";
  } else if (key == "deadline-ms") {
    if (!parse_u64(value, u64)) return bad_value();
    spec.deadline_ms = u64;
  } else {
    return "unknown key '" + key + "'";
  }
  return {};
}

std::string validate_spec(const MissionSpec& spec) {
  if (spec.name.empty()) return "mission name required";
  if (spec.lanes == 0) return "lanes must be >= 1";
  if (spec.size < 4 || spec.size > 4096) return "size must be in [4, 4096]";
  if (spec.lambda == 0) return "lambda must be >= 1";
  return {};
}

std::vector<MissionSpec> parse_manifest(std::istream& in) {
  std::vector<MissionSpec> specs;
  std::map<std::string, std::size_t> name_lines;  // name -> defining line
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::string kind_word;
    if (!(words >> kind_word)) continue;  // blank / comment-only line

    MissionSpec spec;
    if (!parse_kind(kind_word, spec.kind)) {
      manifest_error(line_no, "unknown mission kind '" + kind_word + "'");
    }
    if (!(words >> spec.name)) {
      manifest_error(line_no, "missing mission name");
    }
    const auto [where, inserted] = name_lines.emplace(spec.name, line_no);
    if (!inserted) {
      manifest_error(line_no, "duplicate mission name '" + spec.name +
                                  "' (first used on line " +
                                  std::to_string(where->second) + ")");
    }
    std::string option;
    while (words >> option) {
      const std::size_t eq = option.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == option.size()) {
        manifest_error(line_no, "expected key=value, got '" + option + "'");
      }
      const std::string error =
          apply_spec_option(spec, option.substr(0, eq), option.substr(eq + 1));
      if (!error.empty()) manifest_error(line_no, error);
    }
    const std::string invalid = validate_spec(spec);
    if (!invalid.empty()) manifest_error(line_no, invalid);
    specs.push_back(std::move(spec));
  }
  return specs;
}

MissionImages make_mission_images(const MissionSpec& spec) {
  const img::Image scene =
      img::make_scene(spec.size, spec.size, spec.scene_seed);
  MissionImages images;
  switch (spec.kind) {
    case MissionKind::kDenoise:
    case MissionKind::kCascade: {
      Rng rng(hash_mix(spec.seed, 0xA11CE, spec.scene_seed));
      images.train = img::add_salt_pepper(scene, spec.noise, rng);
      images.reference = scene;
      break;
    }
    case MissionKind::kEdge:
      images.train = scene;
      images.reference = img::sobel_magnitude(scene);
      break;
    case MissionKind::kMorphology:
      images.train = scene;
      images.reference = img::dilate3x3(scene);
      break;
  }
  return images;
}

MissionImagesCache::MissionImagesCache(std::size_t capacity)
    : capacity_(capacity) {}

MissionImagesCache::Key MissionImagesCache::key_of(const MissionSpec& spec) {
  std::uint64_t noise_bits = 0;
  static_assert(sizeof(noise_bits) == sizeof(spec.noise));
  std::memcpy(&noise_bits, &spec.noise, sizeof(noise_bits));
  return {static_cast<int>(spec.kind), spec.size, spec.scene_seed, noise_bits,
          spec.seed};
}

std::shared_ptr<const MissionImages> MissionImagesCache::get_or_make(
    const MissionSpec& spec) {
  const Key key = key_of(spec);
  if (capacity_ != 0) {
    std::lock_guard lock(mutex_);
    const auto found = entries_.find(key);
    if (found != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, found->second.lru_pos);
      return found->second.images;
    }
    ++stats_.misses;
  }
  // Synthesis happens OUTSIDE the lock: a miss must not stall every other
  // mission's warm lookup behind a multi-millisecond scene build.
  auto images = std::make_shared<const MissionImages>(
      make_mission_images(spec));
  if (capacity_ != 0) {
    std::lock_guard lock(mutex_);
    if (entries_.find(key) == entries_.end()) {
      lru_.push_front(key);
      entries_.emplace(key, Entry{images, lru_.begin()});
      while (entries_.size() > capacity_) {
        entries_.erase(lru_.back());
        lru_.pop_back();
        ++stats_.evictions;
      }
    }
  }
  return images;
}

MissionImagesCacheStats MissionImagesCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

JobConfig make_job_config(const MissionSpec& spec) {
  JobConfig job;
  job.name = spec.name;
  job.lanes = spec.lanes;
  job.priority = spec.priority;
  job.deadline_ms = spec.deadline_ms;
  return job;
}

std::string spec_to_manifest_line(const MissionSpec& spec) {
  std::ostringstream line;
  line << kind_name(spec.kind) << ' ' << spec.name;
  line << " lanes=" << spec.lanes;
  line << " priority=" << spec.priority;
  line << " generations=" << spec.generations;
  line << " size=" << spec.size;
  // %.17g round-trips every double exactly through std::stod.
  char noise[64];
  std::snprintf(noise, sizeof(noise), "%.17g", spec.noise);
  line << " noise=" << noise;
  line << " rate=" << spec.mutation_rate;
  line << " lambda=" << spec.lambda;
  line << " seed=" << spec.seed;
  line << " scene-seed=" << spec.scene_seed;
  line << " two-level=" << (spec.two_level ? 1 : 0);
  line << " merged=" << (spec.merged_fitness ? 1 : 0);
  line << " interleaved=" << (spec.interleaved ? 1 : 0);
  line << " deadline-ms=" << spec.deadline_ms;
  return line.str();
}

std::string spec_from_manifest_line(const std::string& line,
                                    MissionSpec& spec) {
  try {
    std::istringstream in(line);
    std::vector<MissionSpec> specs = parse_manifest(in);
    if (specs.size() != 1) return "expected exactly one manifest line";
    spec = std::move(specs.front());
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

void run_spec(platform::WaveExecutor& executor, const MissionSpec& spec,
              JobOutcome& outcome) {
  run_spec(executor, spec, outcome, MissionCheckpointing{});
}

void run_spec(platform::WaveExecutor& executor, const MissionSpec& spec,
              JobOutcome& outcome, const MissionCheckpointing& ck,
              MissionImagesCache* images_cache) {
  // The shared_ptr keeps the frames alive for the whole mission; cached
  // frames are bit-identical to fresh ones (pure function of the spec).
  const std::shared_ptr<const MissionImages> frames =
      images_cache != nullptr ? images_cache->get_or_make(spec)
                              : std::make_shared<const MissionImages>(
                                    make_mission_images(spec));
  const MissionImages& images = *frames;
  platform::CheckpointPolicy policy;
  policy.every = ck.every;
  policy.preempt_after = ck.preempt_after;
  policy.sink = ck.sink;
  policy.resume = ck.resume.get();
  policy.should_preempt = ck.should_preempt;
  const platform::CheckpointPolicy* checkpoint =
      ck.active() ? &policy : nullptr;
  if (spec.kind == MissionKind::kCascade) {
    platform::CascadeConfig config;
    config.es = es_config(spec);
    config.fitness = spec.merged_fitness ? platform::CascadeFitness::kMerged
                                         : platform::CascadeFitness::kSeparate;
    config.schedule = spec.interleaved
                          ? platform::CascadeSchedule::kInterleaved
                          : platform::CascadeSchedule::kSequential;
    outcome.cascade = platform::evolve_cascade_mission(
        executor, images.train, images.reference, config, checkpoint);
    outcome.stats.mission_time = outcome.cascade.duration;
  } else {
    outcome.intrinsic =
        platform::evolve_mission(executor, images.train, images.reference,
                                 es_config(spec), nullptr, checkpoint);
    outcome.stats.mission_time = outcome.intrinsic.duration;
  }
}

ArrayPool::JobBody make_job_body(MissionSpec spec) {
  return make_job_body(std::move(spec), MissionCheckpointing{});
}

ArrayPool::JobBody make_job_body(MissionSpec spec, MissionCheckpointing ck) {
  return [spec = std::move(spec), ck = std::move(ck)](
             MissionContext& context, JobOutcome& outcome) {
    // Fold the pool's preemption request (lane quarantine pulling the
    // mission off its slice) into the driver's boundary poll, so every
    // pooled mission is migratable — not only those the caller configured.
    MissionCheckpointing durable = ck;
    const std::function<bool()> upstream = durable.should_preempt;
    durable.should_preempt = [&context, upstream] {
      return context.preempt_requested() || (upstream && upstream());
    };
    run_spec(context, spec, outcome, durable, context.images_cache());
    const bool preempted = spec.kind == MissionKind::kCascade
                               ? outcome.cascade.preempted
                               : outcome.intrinsic.preempted;
    if (preempted) throw MissionPreempted();
  };
}

JobOutcome run_spec_standalone(const MissionSpec& spec,
                               ThreadPool* host_pool) {
  return run_spec_standalone(spec, host_pool, MissionCheckpointing{});
}

JobOutcome run_spec_standalone(const MissionSpec& spec, ThreadPool* host_pool,
                               const MissionCheckpointing& ck) {
  platform::PlatformConfig pc;
  pc.num_arrays = spec.lanes;
  // Leave shape/clock/line_width/seed at their defaults — the same values
  // PoolConfig/JobConfig default to, so this run is bit-comparable to the
  // pooled one.
  pc.pool = host_pool;
  platform::EvolvablePlatform platform(pc);
  std::vector<std::size_t> lanes(spec.lanes);
  for (std::size_t i = 0; i < lanes.size(); ++i) lanes[i] = i;
  platform::DirectWaveExecutor executor(platform, lanes);
  JobOutcome outcome;
  run_spec(executor, spec, outcome, ck);
  return outcome;
}

}  // namespace ehw::sched
