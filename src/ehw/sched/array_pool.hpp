#pragma once
// ArrayPool — the multi-mission scheduler: one pool of N simulated
// processing arrays (with their reconfiguration engines) serving a stream
// of concurrent evolution/mission jobs.
//
// Placement model. Arrays are allocated to a job for its whole run, at
// job granularity: an admitted job leases `lanes` arrays, built as a
// dedicated EvolvablePlatform slice (own timeline, own engine, own
// configuration memory), and returns them on completion. This mirrors how
// a real MPA fabric would be shared — evolving candidates are *resident
// state* in the fabric, so time-multiplexing one array between two
// missions would cost a full array reconfiguration per swap
// (cells x kPeReconfigTime through the single engine) and destroy the
// Fig. 11 R/F overlap; statically partitioning array modules between
// concurrent jobs is the multiplexing a scheduler can actually win with
// (cf. FPGA-cluster EHW, arXiv:1412.5384). It is also what makes mission
// results BIT-IDENTICAL to standalone runs regardless of host
// interleaving: no simulated state is shared between jobs.
//
// What IS shared: the host execution core (job bodies run as tasks on a
// work-stealing WorkStealPool bounded by hardware concurrency — no
// thread is created or destroyed per job; pixel kernels may additionally
// fan out over PoolConfig.host_pool), the compiled-array cache — keyed
// by configuration fingerprint (genotype + defect map), so identical
// candidates across missions and generations never recompile — and the
// fitness memo, which skips frame streaming entirely for (candidate,
// frame-set) pairs any mission already measured. Cache and memo warmth
// affect host speed only, never simulated results.
//
// Unit of work: the PR-2 wave protocol. Drivers hold a
// platform::WaveExecutor; the pool's MissionContext implements it by
// running evaluate_offspring_wave with the cache's compile hook, checking
// cancellation at wave boundaries and counting progress.
//
// Pool-level simulated time: each job's internal timeline starts at 0
// (exactly like a standalone run); the pool separately replays its own
// admission policy over the finished jobs' simulated durations to report
// a deterministic cluster schedule (who ran when on the shared arrays,
// makespan, missions per simulated second) that is independent of host
// thread interleaving. See simulated_schedule().

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ehw/common/json.hpp"
#include "ehw/common/thread_pool.hpp"
#include "ehw/common/work_steal.hpp"
#include "ehw/evo/fitness_memo.hpp"
#include "ehw/platform/cascade_evolution.hpp"
#include "ehw/platform/evolution_driver.hpp"
#include "ehw/platform/mission.hpp"
#include "ehw/platform/wave.hpp"
#include "ehw/sched/compiled_cache.hpp"
#include "ehw/sched/job_queue.hpp"

namespace ehw::sched {

struct PoolConfig {
  /// Arrays in the pool (the schedulable capacity).
  std::size_t num_arrays = 8;
  /// Fabric parameters every leased platform slice is built with.
  fpga::ArrayShape shape{4, 4};
  double clock_mhz = 100.0;
  std::size_t line_width = 128;
  /// Compiled-array cache entries shared by every mission (0 disables).
  std::size_t cache_capacity = 512;
  /// Fitness-memo entries shared by every mission (0 disables): identical
  /// candidates re-encountered on the same frame set — within or across
  /// missions — skip frame streaming entirely (see evo::FitnessMemo).
  std::size_t fitness_memo_capacity = 1 << 16;
  /// Mission image pairs kept warm per pool (0 disables): repeat specs
  /// skip scene synthesis + degradation (see MissionImagesCache). Frames
  /// are pure functions of the spec, so hits are bit-identical.
  std::size_t mission_images_capacity = 8;
  /// Host thread pool handed to each mission's platform for intra-wave
  /// candidate fan-out. nullptr keeps candidate evaluation
  /// single-threaded inside each mission — mission-level concurrency
  /// still comes from the pool's per-job threads. Must NOT be a pool any
  /// job body itself runs on (its workers would deadlock waiting on
  /// their own fan-out).
  ThreadPool* host_pool = nullptr;
  /// Cap on simultaneously running jobs; 0 = bounded by arrays only.
  std::size_t max_concurrent_jobs = 0;
  /// Execution core job bodies run on; nullptr = the process-shared
  /// WorkStealPool::shared(). Both the scheduler CLI and the service
  /// daemon hand their pools the same instance, so a host never runs
  /// more job threads than cores no matter how many pools front it.
  WorkStealPool* workers = nullptr;
};

struct JobConfig {
  std::string name = "job";
  /// Arrays to lease (evaluation lanes); must be in [1, pool arrays].
  std::size_t lanes = 1;
  /// Higher admits earlier (see JobQueue for the fairness rules).
  int priority = 0;
  /// Seed of the leased fabric (fault-injection streams etc.); matches
  /// the standalone PlatformConfig default so pooled and standalone runs
  /// of the same mission see identical hardware.
  std::uint64_t platform_seed = 0x13572468ACE02468ULL;
  bool enable_trace = false;
  /// Wall-clock budget once RUNNING (0 = none). A job past its deadline
  /// is expired by the pool watchdog at its next wave boundary and
  /// finishes kFailed with a "deadline exceeded" error.
  std::uint64_t deadline_ms = 0;
};

enum class JobStatus : std::uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
  /// Stopped at a generation boundary by a preemption request (lane
  /// quarantine / migration); the job's latest checkpoint carries its
  /// state, and the submitter decides whether to resubmit it elsewhere.
  kPreempted,
};

/// Everything a finished job hands back. Which members are meaningful
/// depends on the job body (evolution jobs fill `intrinsic`, cascade jobs
/// `cascade`, mission-mode jobs `stats`); the pool itself fills the cache
/// counters in `stats` and `error` on failure.
struct JobOutcome {
  platform::IntrinsicResult intrinsic;
  platform::CascadeResult cascade;
  platform::MissionStats stats;
  std::string error;
  /// Host-time phase breakdown ({"phases":[{"phase","count","total_ns"}]})
  /// accumulated by the span guards while the job body ran; null when no
  /// instrumented phase fired. Execution telemetry, not part of the
  /// bit-reproducible mission result.
  Json profile;
};

/// Thrown out of MissionContext wave/cancellation points after
/// MissionRunner::cancel(); the pool catches it and marks the job
/// kCancelled. Job bodies should let it propagate.
class MissionCancelled : public std::runtime_error {
 public:
  MissionCancelled() : std::runtime_error("mission cancelled") {}
};

/// Thrown by job bodies that stopped at a generation boundary in answer
/// to MissionRunner::request_preempt() (after emitting their checkpoint);
/// the pool catches it and marks the job kPreempted.
class MissionPreempted : public std::runtime_error {
 public:
  MissionPreempted() : std::runtime_error("mission preempted") {}
};

class ArrayPool;
class MissionImagesCache;  // missions.hpp (a layer above): pool-owned so
                           // warm frames follow placement affinity

/// One observation of a job's life, delivered to MissionRunner
/// subscribers: a wave completed (kProgress) or the job left the running
/// set (kFinished, with the final status). Fired from the job's own
/// thread — subscribers must be thread-safe and cheap.
struct MissionEvent {
  enum class Kind : std::uint8_t { kProgress, kFinished };
  Kind kind = Kind::kProgress;
  /// Waves completed at the time of the event.
  std::uint64_t waves = 0;
  /// kRunning for progress events; the final status for kFinished.
  JobStatus status = JobStatus::kRunning;
};

/// Async handle to a submitted job: progress, cooperative cancellation
/// and the result future. Thread-safe; outlives the pool's job record.
class MissionRunner {
 public:
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] JobStatus status() const;

  /// Requests cooperative cancellation: the job stops at its next wave
  /// boundary (or MissionContext::check_cancelled call). No-op once the
  /// job finished.
  void cancel() noexcept { cancel_.store(true, std::memory_order_relaxed); }

  /// Requests cooperative preemption: the job body stops at its next
  /// GENERATION boundary (after emitting a checkpoint, when it has a
  /// sink) and finishes kPreempted. Unlike cancel(), the job's evolved
  /// state survives — the submitter can resume it on a different slice.
  void request_preempt() noexcept {
    preempt_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool preempt_requested() const noexcept {
    return preempt_.load(std::memory_order_relaxed);
  }

  /// True once the pool watchdog expired this job's deadline (the
  /// cancellation that follows is reported kFailed, not kCancelled).
  [[nodiscard]] bool deadline_exceeded() const noexcept {
    return deadline_exceeded_.load(std::memory_order_relaxed);
  }

  /// Blocks until the job left the running set (done/failed/cancelled).
  void wait() const;

  /// Waits, then returns the outcome (cache counters already merged).
  [[nodiscard]] const JobOutcome& result() const;

  /// Offspring waves completed so far (live progress).
  [[nodiscard]] std::uint64_t waves_completed() const noexcept {
    return waves_.load(std::memory_order_relaxed);
  }

  /// Registers an event observer: called on every completed wave and once
  /// with kFinished when the job leaves the running set. If the job
  /// already finished, the callback fires kFinished immediately on the
  /// calling thread (so late subscribers never miss completion). Progress
  /// callbacks run on the job's thread; they must not block it for long
  /// and must not call back into blocking MissionRunner methods.
  using EventCallback = std::function<void(const MissionEvent&)>;
  void subscribe(EventCallback callback);

  /// Simulated duration of the finished job (its platform's makespan).
  [[nodiscard]] sim::SimTime sim_duration() const;

 private:
  friend class ArrayPool;
  friend class MissionContext;

  explicit MissionRunner(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancel_.load(std::memory_order_relaxed);
  }
  /// Watchdog path: flags the deadline, then cancels cooperatively.
  void expire() noexcept {
    deadline_exceeded_.store(true, std::memory_order_relaxed);
    cancel();
  }
  void finish(JobStatus status, JobOutcome outcome, sim::SimTime duration);
  /// Counts one completed wave and fires progress observers.
  void notify_wave();

  std::string name_;
  std::atomic<bool> cancel_{false};
  std::atomic<bool> preempt_{false};
  std::atomic<bool> deadline_exceeded_{false};
  std::atomic<std::uint64_t> waves_{0};
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  JobStatus status_ = JobStatus::kQueued;  // guarded by mutex_
  JobOutcome outcome_;                     // guarded until finished
  sim::SimTime sim_duration_ = 0;
  std::vector<EventCallback> observers_;  // guarded by mutex_; invoked
                                          // outside it (copied first)
};

/// The lease a running job body works through: implements WaveExecutor
/// over the job's platform slice, routing candidate compilation through
/// the pool's shared cache and honouring cancellation at wave boundaries.
class MissionContext final : public platform::WaveExecutor {
 public:
  [[nodiscard]] platform::EvolvablePlatform& platform() noexcept override {
    return *platform_;
  }
  [[nodiscard]] const std::vector<std::size_t>& lanes()
      const noexcept override {
    return lanes_;
  }
  platform::WaveOutcome run_wave(const std::vector<evo::Candidate>& offspring,
                                 const std::vector<std::size_t>& wave_lanes,
                                 const img::Image& input,
                                 const img::Image& compare,
                                 sim::SimTime barrier) override;

  /// Cooperative cancellation point for job bodies with long phases
  /// between waves. Throws MissionCancelled when cancel() was requested.
  void check_cancelled() const;

  [[nodiscard]] const JobConfig& job() const noexcept { return job_; }
  [[nodiscard]] std::uint64_t cache_hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const noexcept {
    return misses_;
  }
  [[nodiscard]] std::uint64_t memo_hits() const noexcept {
    return wave_memo_.stats.hits;
  }
  [[nodiscard]] std::uint64_t memo_misses() const noexcept {
    return wave_memo_.stats.misses;
  }

  /// True when the owning runner was asked to preempt; job bodies poll
  /// this at generation boundaries (via CheckpointPolicy.should_preempt).
  [[nodiscard]] bool preempt_requested() const noexcept;

  /// The pool's warm mission-frame cache (nullptr for poolless contexts
  /// or when the pool disabled it).
  [[nodiscard]] MissionImagesCache* images_cache() noexcept;

 private:
  friend class ArrayPool;
  MissionContext(JobConfig job, const PoolConfig& pool_config,
                 CompiledArrayCache* cache, evo::FitnessMemo* memo,
                 MissionRunner* runner, ArrayPool* pool = nullptr,
                 std::uint64_t job_id = 0);

  [[nodiscard]] platform::CompiledLane compile_cached(std::size_t lane);

  JobConfig job_;
  std::unique_ptr<platform::EvolvablePlatform> platform_;
  std::vector<std::size_t> lanes_;
  CompiledArrayCache* cache_;  // nullptr-safe (uncached)
  MissionRunner* runner_;
  ArrayPool* pool_;        // nullptr-safe (no SEU polling)
  std::uint64_t job_id_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  /// Shared memo + accumulated per-mission hit/miss tally; the frame-set
  /// id is refreshed per wave (cascade stages change frames mid-mission).
  platform::WaveMemo wave_memo_;
};

class ArrayPool {
 public:
  /// A job body: drive the mission through the context (the wave
  /// executor) and record results into the outcome.
  using JobBody = std::function<void(MissionContext&, JobOutcome&)>;

  explicit ArrayPool(PoolConfig config);
  ~ArrayPool();

  ArrayPool(const ArrayPool&) = delete;
  ArrayPool& operator=(const ArrayPool&) = delete;

  [[nodiscard]] const PoolConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t num_arrays() const noexcept {
    return config_.num_arrays;
  }

  /// Enqueues a job; it starts as soon as the admission policy grants it
  /// `job.lanes` arrays. Requires 1 <= lanes <= num_arrays.
  std::shared_ptr<MissionRunner> submit(JobConfig job, JobBody body);

  /// Blocks until every job submitted so far has finished.
  void wait_all();

  /// Releases the pool-side records of FINISHED jobs — job-body closures
  /// and the pool's reference to runner/outcome — so a long-running
  /// service that submits forever stays bounded (callers keep results
  /// alive through their own MissionRunner handles). Reaped jobs no
  /// longer appear in simulated_schedule(). Returns the number of
  /// records released.
  std::size_t reap_finished();

  // --- lane quarantine ----------------------------------------------------
  /// Takes array `id` out of the schedulable capacity. A free array is
  /// quarantined immediately; a leased one is flagged and its job is
  /// asked to preempt (it quarantines when the lease is released).
  /// Queued jobs whose lane demand can never fit the remaining healthy
  /// capacity are failed rather than left waiting forever.
  void quarantine_array(std::size_t id);

  /// Returns a quarantined array to service (or clears a pending
  /// quarantine on a leased one). False when `id` was already healthy.
  bool heal_array(std::size_t id);

  /// Arrays not quarantined (the degraded schedulable capacity).
  [[nodiscard]] std::size_t healthy_arrays() const;

  struct ArrayHealth {
    std::size_t id = 0;
    enum class State : std::uint8_t { kFree, kLeased, kQuarantined };
    State state = State::kFree;
    bool pending_quarantine = false;
    /// Name of the leasing job (kLeased only).
    std::string job;
  };
  [[nodiscard]] std::vector<ArrayHealth> array_health() const;

  /// Wave-boundary hook called from MissionContext::run_wave: when the
  /// lane-SEU fault site fires, one of the calling job's leased arrays is
  /// quarantined (which preempts that job at its next generation
  /// boundary).
  void poll_wave_faults(std::uint64_t job_id);

  /// Shared compiled-array cache traffic (all missions).
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }

  /// Shared fitness-memo traffic (all missions).
  [[nodiscard]] evo::FitnessMemoStats memo_stats() const {
    return memo_.stats();
  }

  /// The pool's warm mission-frame cache; nullptr when disabled.
  [[nodiscard]] MissionImagesCache* images_cache() noexcept {
    return images_cache_.get();
  }

  // --- warm-state persistence ---------------------------------------------
  /// Serializes the shared fitness memo and the rebuild recipes of the
  /// resident compiled-array entries ("mpa-warm-v1"). Cache and memo
  /// warmth affect host speed only, never simulated results, so this is
  /// purely a restart accelerator.
  [[nodiscard]] Json export_warm_state() const;

  struct WarmLoadStats {
    std::size_t memo_loaded = 0;
    std::size_t cache_loaded = 0;
    /// Recipes whose recomputed key did not match (different platform
    /// seed or fabric), were malformed, or referenced an out-of-range
    /// lane — dropped, never trusted.
    std::size_t cache_skipped = 0;
  };
  /// Rehydrates from a prior export: memo entries are preloaded verbatim
  /// (content-hash keyed); cache recipes are recompiled on a scratch
  /// platform slice and admitted only when the re-derived key matches.
  WarmLoadStats import_warm_state(const Json& state);

  /// Currently running + queued job counts (snapshot).
  [[nodiscard]] std::size_t jobs_in_flight() const;

  /// Consistent point-in-time view of the pool, for service /stats
  /// endpoints and operator tooling.
  struct PoolStats {
    std::size_t num_arrays = 0;
    std::size_t free_arrays = 0;
    std::size_t quarantined = 0;
    std::size_t running = 0;
    std::size_t queued = 0;
    std::uint64_t submitted = 0;
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t preempted = 0;
    std::uint64_t deadline_expired = 0;
    [[nodiscard]] std::size_t healthy() const noexcept {
      return num_arrays - quarantined;
    }
    [[nodiscard]] std::uint64_t finished() const noexcept {
      return done + failed + cancelled + preempted;
    }
  };
  [[nodiscard]] PoolStats pool_stats() const;

  /// Lock-free snapshot from atomic mirrors published at the end of every
  /// guarded state transition. Each counter is individually exact, but
  /// the set is not a single consistent point in time the way
  /// pool_stats() is — built for high-rate pollers (PoolGroup::stats,
  /// the forwarder's placement loop, `mpa stats`) that must never
  /// serialize against job bookkeeping under mutex_.
  [[nodiscard]] PoolStats quick_stats() const noexcept;

  // --- pool-level simulated schedule -------------------------------------
  struct ScheduleEntry {
    std::string name;
    std::size_t lanes = 1;
    sim::SimTime start = 0;  // pool simulated time the job's arrays engage
    sim::SimTime end = 0;
  };
  struct ScheduleReport {
    std::vector<ScheduleEntry> jobs;  // submission order
    /// Pool makespan: when the last job's arrays free up.
    sim::SimTime makespan = 0;
    /// Sum of job durations = makespan of a one-job-at-a-time pool.
    sim::SimTime serialized = 0;
    [[nodiscard]] double speedup() const {
      return makespan == 0 ? 0.0
                           : static_cast<double>(serialized) /
                                 static_cast<double>(makespan);
    }
    [[nodiscard]] double missions_per_sim_second() const {
      return makespan == 0
                 ? 0.0
                 : static_cast<double>(jobs.size()) / sim::to_seconds(makespan);
    }
  };

  /// Waits for every submitted job, then deterministically replays the
  /// admission policy over their simulated durations: the cluster
  /// schedule the paper's fabric would execute on the whole batch,
  /// independent of host thread interleaving. This is the
  /// scheduler-throughput metric (missions per simulated second) tracked
  /// in the bench suite. Note it is the policy's *plan* with every job
  /// known up front; live host admission can order differently when jobs
  /// are submitted over time (results never depend on that order, only
  /// cache warmth does).
  [[nodiscard]] ScheduleReport simulated_schedule();

 private:
  struct Job {
    JobConfig config;
    JobBody body;
    std::shared_ptr<MissionRunner> runner;
    std::uint64_t id = 0;
    bool finished = false;       // guarded by pool mutex
    sim::SimTime sim_duration = 0;
    /// Tracer::now_ns() at admission into the queue; run_job turns the
    /// difference into the job's queue-wait span/phase.
    std::uint64_t submit_ns = 0;
    /// Array ids leased while running (guarded by pool mutex; empty when
    /// queued or released).
    std::vector<std::size_t> leased;
    bool has_deadline = false;
    bool deadline_fired = false;
    std::chrono::steady_clock::time_point deadline{};
  };
  /// Per-array identity and health; free_arrays_ always equals the
  /// number of kFree slots.
  struct ArraySlot {
    ArrayHealth::State state = ArrayHealth::State::kFree;
    bool pending_quarantine = false;
    std::uint64_t job_id = 0;  // meaningful while kLeased
  };
  /// A job whose body could not be dispatched to the execution core:
  /// its finish() must be fired AFTER mutex_ is released (observers may
  /// lock arbitrary caller state; never invoke them under the pool
  /// lock).
  struct FailedStart {
    std::shared_ptr<MissionRunner> runner;
    std::string error;
  };

  /// Admits queued jobs while capacity allows, appending dispatch
  /// failures for the caller to finish outside the lock. Caller holds
  /// mutex_.
  void admit_locked(std::vector<FailedStart>& failures);
  static void finish_failed(std::vector<FailedStart>& failures);
  void run_job(Job* job);
  /// Quarantines `id` (see quarantine_array); caller holds mutex_ and
  /// finishes `failures` outside it.
  void quarantine_locked(std::size_t id, std::vector<FailedStart>& failures);
  /// Fails queued jobs that can never fit the healthy capacity.
  void evict_unsatisfiable_locked(std::vector<FailedStart>& failures);
  void ensure_watchdog_locked();
  void watchdog_loop();
  /// Copies the guarded counters into the atomic mirrors that
  /// quick_stats() reads. Caller holds mutex_ (the constructor calls it
  /// before any concurrency exists).
  void publish_stats_locked() const noexcept;

  PoolConfig config_;
  WorkStealPool* workers_;  // resolved: config_.workers or the shared core
  CompiledArrayCache cache_;
  evo::FitnessMemo memo_;
  /// unique_ptr: MissionImagesCache lives a layer above (missions.hpp),
  /// only forward-declared here; nullptr when capacity is 0.
  std::unique_ptr<MissionImagesCache> images_cache_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  JobQueue queue_;
  /// Live + unreaped records, keyed (and iterated) by submission id.
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::uint64_t next_job_id_ = 0;
  std::uint64_t submitted_ = 0;  // survives reaping, unlike jobs_.size()
  std::vector<ArraySlot> slots_;  // one per array, guarded by mutex_
  std::size_t free_arrays_;
  std::size_t quarantined_ = 0;
  std::size_t running_ = 0;
  /// Job tasks handed to the execution core whose run_job has not yet
  /// reached its final critical section; wait_all (and therefore the
  /// destructor) waits for zero, so no worker can still be inside a
  /// run_job that references this pool when it is torn down.
  std::size_t pending_tasks_ = 0;
  // Terminal-status tallies (guarded by mutex_).
  std::uint64_t done_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t preempted_ = 0;
  std::uint64_t deadline_expired_ = 0;
  // Deadline watchdog: started lazily with the first deadline job,
  // woken on admissions and shutdown (guarded by mutex_ / watchdog_cv_).
  std::thread watchdog_;
  std::condition_variable watchdog_cv_;
  bool stopping_ = false;
  /// Relaxed-atomic mirrors of the guarded counters, republished at the
  /// end of every mutating critical section (see publish_stats_locked).
  struct StatMirror {
    std::atomic<std::size_t> free_arrays{0};
    std::atomic<std::size_t> quarantined{0};
    std::atomic<std::size_t> running{0};
    std::atomic<std::size_t> queued{0};
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> done{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> cancelled{0};
    std::atomic<std::uint64_t> preempted{0};
    std::atomic<std::uint64_t> deadline_expired{0};
  };
  mutable StatMirror mirror_;
};

}  // namespace ehw::sched
