#include "ehw/sched/checkpoint_store.hpp"

#include "ehw/common/fault.hpp"
#include "ehw/common/persist.hpp"

namespace ehw::sched {

namespace {
constexpr const char* kFileFormatTag = "mpa-checkpoint-v1";
}  // namespace

std::string save_mission_checkpoint(
    const std::string& path, const MissionSpec& spec,
    const platform::MissionCheckpoint& checkpoint) {
  if (fault::should_fire(fault::Site::kCheckpointIo)) {
    return "injected checkpoint I/O fault";
  }
  Json doc(Json::Object{
      {"format", Json(kFileFormatTag)},
      {"spec", Json(spec_to_manifest_line(spec))},
      {"checkpoint", platform::mission_checkpoint_to_json(checkpoint)},
  });
  return atomic_write_file(path, doc.dump() + "\n");
}

std::string load_mission_checkpoint(const std::string& path,
                                    MissionSpec& spec,
                                    platform::MissionCheckpoint& checkpoint) {
  std::string text;
  if (std::string err = read_file_text(path, text); !err.empty()) return err;
  Json doc;
  try {
    doc = Json::parse(text);
  } catch (const JsonError& e) {
    return std::string("bad checkpoint JSON: ") + e.what();
  }
  if (!doc.is_object() || doc.get_string("format", "") != kFileFormatTag) {
    return "not an " + std::string(kFileFormatTag) + " file";
  }
  const Json* spec_line = doc.get("spec");
  if (spec_line == nullptr || !spec_line->is_string()) {
    return "missing spec line";
  }
  if (std::string err = spec_from_manifest_line(spec_line->as_string(), spec);
      !err.empty()) {
    return "bad spec: " + err;
  }
  const Json* payload = doc.get("checkpoint");
  if (payload == nullptr) return "missing checkpoint payload";
  if (std::string err = platform::mission_checkpoint_from_json(*payload,
                                                               checkpoint);
      !err.empty()) {
    return "bad checkpoint: " + err;
  }
  return "";
}

}  // namespace ehw::sched
