#pragma once
// Deterministic, seeded fault injection for robustness testing.
//
// A process-wide FaultPlan arms named injection sites spread across the
// stack (socket I/O, journal fsync, checkpoint store, work-steal tasks,
// mid-mission lane SEUs). Each site carries a trigger rule evaluated on
// every HIT (a call to should_fire at that site):
//
//   after:N   skip the first N hits, then become eligible
//   every:N   of the eligible hits, fire every Nth (1 = all)
//   count:N   stop after N fires (default unlimited)
//   prob:P    seeded coin per eligible hit; the draw is a stateless hash
//             of (plan seed, site, hit index), so firing is deterministic
//             for a given plan regardless of thread interleaving
//
// Plans come from `mpa serve --fault-plan SPEC`, the EHW_FAULT_PLAN
// environment variable, or programmatic install() in tests. The spec
// grammar is ';'-separated clauses:
//
//   sock_read_stall;fsync=after:1,count:1;lane_seu=after:10,count:1
//   stall-ms=200;seed=42
//
// A bare site name arms it with defaults (fire on every hit). The two
// global clauses set the plan seed and the stall duration used by the
// *_stall / task_delay sites.
//
// Cost when no plan is installed: one relaxed atomic load per site hit
// (and the evolution inner loops never hit a site at all).

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace ehw::fault {

enum class Site : std::uint8_t {
  kSockReadError = 0,  // recv fails with EIO
  kSockReadStall,      // recv delayed by stall_ms
  kSockWriteError,     // send fails with EIO
  kSockWriteStall,     // send delayed by stall_ms
  kJournalFsync,       // journal append reports fsync failure
  kCheckpointIo,       // checkpoint store read/write fails
  kTaskThrow,          // a scheduled job task throws on entry
  kTaskDelay,          // a work-steal task delayed by stall_ms
  kLaneSeu,            // a leased array takes an SEU mid-mission
  kPollError,          // a forwarder backend stats poll fails outright
  kBackendHello,       // a backend identity probe (hello/epoch) fails
  kOversizeLine,       // read_line treats the next frame as oversized
  kCount,
};
inline constexpr std::size_t kSiteCount = static_cast<std::size_t>(Site::kCount);

[[nodiscard]] const char* site_name(Site site) noexcept;
[[nodiscard]] bool parse_site(std::string_view name, Site& out) noexcept;

struct SiteRule {
  bool armed = false;
  std::uint64_t after = 0;  // hits to skip before eligibility
  std::uint64_t every = 1;  // fire every Nth eligible hit
  std::uint64_t count = ~std::uint64_t{0};  // max fires
  double prob = 1.0;        // seeded per-hit coin
};

struct FaultPlan {
  std::uint64_t seed = 0x5EEDFA17ULL;
  std::uint32_t stall_ms = 50;
  std::array<SiteRule, kSiteCount> rules{};

  [[nodiscard]] SiteRule& rule(Site site) noexcept {
    return rules[static_cast<std::size_t>(site)];
  }
  [[nodiscard]] const SiteRule& rule(Site site) const noexcept {
    return rules[static_cast<std::size_t>(site)];
  }
};

/// Parses a plan spec (grammar above) into `out`. Returns an error
/// message, or "" on success. An empty spec yields an empty (but
/// installable) plan that never fires.
[[nodiscard]] std::string parse_plan(std::string_view spec, FaultPlan& out);

/// Installs `plan` process-wide and resets all hit/fire counters.
void install(const FaultPlan& plan);
/// Removes any installed plan; all sites go quiet (and cost one relaxed
/// load again).
void uninstall() noexcept;
[[nodiscard]] bool active() noexcept;

namespace detail {
extern std::atomic<bool> g_enabled;
[[nodiscard]] bool should_fire_slow(Site site) noexcept;
}  // namespace detail

/// Counts a hit at `site`; true when the installed plan says this hit
/// fires. The fast path (no plan) is a single relaxed atomic load.
[[nodiscard]] inline bool should_fire(Site site) noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed) &&
         detail::should_fire_slow(site);
}

/// should_fire + sleep(stall_ms) when it fires; for the stall/delay sites.
void maybe_stall(Site site) noexcept;

/// Observability for tests and the service `health` op.
[[nodiscard]] std::uint64_t hits(Site site) noexcept;
[[nodiscard]] std::uint64_t fired(Site site) noexcept;
[[nodiscard]] std::uint32_t stall_ms() noexcept;
/// Seed of the installed plan (default-plan seed when none is armed).
/// Consumers that want deterministic jitter under EHW_FAULT_PLAN key
/// their hash on this.
[[nodiscard]] std::uint64_t plan_seed() noexcept;

/// RAII install/uninstall for tests.
class ScopedPlan {
 public:
  explicit ScopedPlan(const FaultPlan& plan) { install(plan); }
  explicit ScopedPlan(std::string_view spec);
  ~ScopedPlan() { uninstall(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

}  // namespace ehw::fault
