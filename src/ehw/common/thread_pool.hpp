#pragma once
// A small fixed-size thread pool with blocking chunked fan-out.
//
// The simulator separates *simulated* time (ehw::sim::SimClock, which
// models the FPGA) from *host* time. Host threads are only an accelerator
// for the functional simulation: candidate circuits evaluated on different
// simulated arrays are independent pixel pipelines, so we fan their
// evaluation out across cores. Determinism is preserved because each unit
// of work owns its own RNG stream and writes to disjoint outputs.
//
// The hot entry point is parallel_chunks: the range is split into one
// contiguous chunk per worker, chunks are enqueued as plain
// {function-pointer, context} records (no std::function or packaged_task
// allocation per task), the caller runs the first chunk inline, and a
// std::latch collects completion. submit() remains for the rare generic
// one-off task.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <latch>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace ehw {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a generic task and returns its future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.push(Task{nullptr, nullptr, 0, 0, nullptr,
                       [task] { (*task)(); }});
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs body(lo, hi) over disjoint contiguous chunks covering
  /// [begin, end), one chunk per worker, blocking until all complete.
  /// The calling thread executes the first chunk itself. `body` must be
  /// safe to invoke concurrently on disjoint ranges. The first exception
  /// thrown by any chunk is rethrown here once every chunk has finished.
  template <typename F>
  void parallel_chunks(std::size_t begin, std::size_t end, F&& body) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    const std::size_t chunks =
        std::min(n, std::max<std::size_t>(1, size()));
    if (chunks <= 1) {
      body(begin, end);
      return;
    }
    using Body = std::remove_reference_t<F>;
    Body& ref = body;
    const std::size_t per = (n + chunks - 1) / chunks;
    const std::size_t used = (n + per - 1) / per;  // non-empty chunks
    FanoutState state(static_cast<std::ptrdiff_t>(used - 1));
    {
      std::lock_guard lock(mutex_);
      for (std::size_t c = 1; c < used; ++c) {
        const std::size_t lo = begin + c * per;
        const std::size_t hi = std::min(end, lo + per);
        queue_.push(Task{
            [](void* ctx, std::size_t l, std::size_t h) {
              (*static_cast<Body*>(ctx))(l, h);
            },
            const_cast<void*>(static_cast<const void*>(&ref)), lo, hi,
            &state, nullptr});
      }
    }
    cv_.notify_all();
    try {
      body(begin, std::min(end, begin + per));
    } catch (...) {
      state.record_error();
    }
    state.done.wait();
    if (state.error) std::rethrow_exception(state.error);
  }

  /// Runs fn(i) for i in [begin, end), blocking until all complete.
  /// Work is split into contiguous chunks (one per worker) so that image
  /// rows stay cache-friendly. Executes inline when the range is tiny or
  /// the pool has a single worker.
  template <typename F>
  void parallel_for(std::size_t begin, std::size_t end, F&& fn) {
    parallel_chunks(begin, end, [&fn](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }

  /// Process-wide pool, sized to the machine. Benches and drivers share it
  /// so we never oversubscribe the host.
  static ThreadPool& global();

 private:
  /// Caller-stack completion record for one parallel_chunks fan-out:
  /// counts worker chunks down and carries the first exception any chunk
  /// threw back to the caller.
  struct FanoutState {
    explicit FanoutState(std::ptrdiff_t worker_chunks)
        : done(worker_chunks) {}
    void record_error() noexcept {
      std::lock_guard lock(mutex);
      if (!error) error = std::current_exception();
    }
    std::latch done;
    std::mutex mutex;
    std::exception_ptr error;
  };

  /// One queued unit of work: either a chunk of a parallel_chunks fan-out
  /// (bulk != nullptr; a plain function pointer plus caller-stack context,
  /// completion signalled through `state`) or a generic submit() closure.
  struct Task {
    void (*bulk)(void*, std::size_t, std::size_t);
    void* ctx;
    std::size_t lo;
    std::size_t hi;
    FanoutState* state;
    std::function<void()> generic;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace ehw
