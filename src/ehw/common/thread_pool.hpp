#pragma once
// A small fixed-size thread pool with a blocking parallel_for.
//
// The simulator separates *simulated* time (ehw::sim::SimClock, which
// models the FPGA) from *host* time. Host threads are only an accelerator
// for the functional simulation: candidate circuits evaluated on different
// simulated arrays are independent pixel pipelines, so we fan their
// evaluation out across cores. Determinism is preserved because each unit
// of work owns its own RNG stream and writes to disjoint outputs.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ehw {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task and returns its future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [begin, end), blocking until all complete.
  /// Work is split into contiguous chunks (one per worker) so that image
  /// rows stay cache-friendly. Executes inline when the range is tiny or
  /// the pool has a single worker.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide pool, sized to the machine. Benches and drivers share it
  /// so we never oversubscribe the host.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace ehw
