#pragma once
// Minimal JSON value + parser + compact emitter, shared by the mission
// service protocol (newline-delimited JSON frames) and any tool that
// needs structured metadata without an external dependency.
//
// Scope: the full JSON grammar (objects, arrays, strings with \uXXXX
// escapes incl. surrogate pairs, numbers, booleans, null) with two
// deliberate simplifications:
//   * numbers are stored as double — exact for integers up to 2^53,
//     which covers every count the protocol ships; values that must be
//     bit-exact at 64 bits (genotype hashes, simulated durations) travel
//     as strings;
//   * objects preserve insertion order and allow duplicate keys on parse
//     (last one wins on lookup), matching what a streaming peer emits.
//
// Parsing throws JsonError (a std::runtime_error naming the byte offset)
// instead of asserting: this code faces untrusted network input.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace ehw {

class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };
  using Array = std::vector<Json>;
  /// Order-preserving key/value list (not a map: emit order matters for
  /// readable frames, and parse must not silently merge duplicates).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}  // NOLINT(google-explicit-*)
  Json(bool b) : value_(b) {}                // NOLINT
  Json(double n) : value_(n) {}              // NOLINT
  Json(int n) : value_(static_cast<double>(n)) {}            // NOLINT
  Json(std::int64_t n) : value_(static_cast<double>(n)) {}   // NOLINT
  Json(std::uint64_t n) : value_(static_cast<double>(n)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}            // NOLINT
  Json(std::string s) : value_(std::move(s)) {}              // NOLINT
  Json(Array a) : value_(std::move(a)) {}                    // NOLINT
  Json(Object o) : value_(std::move(o)) {}                   // NOLINT

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  /// Parses exactly one JSON document (trailing whitespace allowed,
  /// trailing garbage is an error). Throws JsonError on malformed input
  /// or nesting deeper than 64 levels.
  [[nodiscard]] static Json parse(std::string_view text);

  /// Compact single-line serialization (never contains a raw newline:
  /// control characters are escaped, so a dumped value is a valid
  /// newline-delimited frame).
  [[nodiscard]] std::string dump() const;

  [[nodiscard]] Type type() const noexcept {
    return static_cast<Type>(value_.index());
  }
  [[nodiscard]] bool is_null() const noexcept { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type() == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type() == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type() == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type() == Type::kObject;
  }

  /// Checked accessors: throw JsonError (offset 0) on a type mismatch so
  /// protocol handlers surface one catchable error kind for "malformed
  /// request" regardless of where the shape went wrong.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  /// Object lookup; nullptr when `this` is not an object or has no such
  /// key. Duplicate keys resolve to the LAST occurrence (parse order).
  [[nodiscard]] const Json* get(std::string_view key) const noexcept;

  /// Typed convenience lookups with fallbacks (object use only).
  [[nodiscard]] std::string get_string(std::string_view key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_number(std::string_view key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// Appends (object) / replaces the last occurrence of `key`. `this`
  /// must already be an object.
  Json& set(std::string key, Json value);
  /// Appends to an array value.
  Json& push_back(Json value);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Exact-integer check used by the emitter and by protocol fields that
/// want a u64 out of a JSON number: true when `n` is integral and
/// representable without loss (|n| < 2^53).
[[nodiscard]] bool json_number_is_exact_int(double n) noexcept;

/// 64-bit-exact integer transport: JSON numbers round at 2^53, so fields
/// that must survive a round trip bit-exactly (hashes, RNG words, sim
/// timestamps, fitness values) travel as decimal strings. These helpers
/// are the one codec the checkpoint files, the mission journal and the
/// service protocol share.
[[nodiscard]] Json json_u64(std::uint64_t value);
[[nodiscard]] Json json_i64(std::int64_t value);

/// Parses a u64 transported as a decimal string (also accepts an exact
/// non-negative integer number for hand-written inputs). Returns false —
/// leaving `out` untouched — on nullptr, wrong type, or overflow.
[[nodiscard]] bool json_read_u64(const Json* field, std::uint64_t& out);
[[nodiscard]] bool json_read_i64(const Json* field, std::int64_t& out);

}  // namespace ehw
