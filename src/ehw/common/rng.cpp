#include "ehw/common/rng.hpp"

namespace ehw {

std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) {
  std::uint64_t s = seed;
  std::uint64_t h = splitmix64(s);
  s ^= a + 0x9E3779B97F4A7C15ULL;
  h ^= splitmix64(s);
  s ^= b + 0xC2B2AE3D27D4EB4FULL;
  h ^= splitmix64(s);
  s ^= c + 0x165667B19E3779F9ULL;
  h ^= splitmix64(s);
  return h;
}

}  // namespace ehw
