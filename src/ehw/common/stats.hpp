#pragma once
// Streaming and batch statistics used to aggregate experiment repetitions
// (the paper reports averages over 50 runs and best-of-run values).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ehw {

/// Welford running mean/variance plus min/max; numerically stable, O(1)
/// per sample, mergeable across threads.
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers over a sample vector.
[[nodiscard]] double mean_of(const std::vector<double>& xs);
[[nodiscard]] double stddev_of(const std::vector<double>& xs);
/// Linear-interpolated percentile, p in [0,100]. Sorts a copy.
[[nodiscard]] double percentile_of(std::vector<double> xs, double p);
[[nodiscard]] double min_of(const std::vector<double>& xs);
[[nodiscard]] double max_of(const std::vector<double>& xs);

}  // namespace ehw
