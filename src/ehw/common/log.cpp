#include "ehw/common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace ehw {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kError: return "error";
    default: return "off  ";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::lock_guard lock(g_mutex);
  std::cerr << '[' << level_name(level) << "] " << msg << '\n';
}

}  // namespace ehw
