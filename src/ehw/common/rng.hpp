#pragma once
// Deterministic, splittable random number generation.
//
// Every stochastic component of the simulator (EA mutation, noise
// injectors, fault injectors, dummy PEs) owns its own Rng stream derived
// from a master seed, so that experiments are bit-reproducible regardless
// of host threading. The generator is xoshiro256** seeded via SplitMix64,
// which is both fast and statistically strong enough for evolutionary
// search and fault sampling.

#include <array>
#include <cstdint>
#include <limits>

#include "ehw/common/assert.hpp"

namespace ehw {

/// SplitMix64 step; used for seeding and for cheap stateless hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state through SplitMix64 as recommended by
  /// the xoshiro authors (never yields the all-zero state).
  explicit Rng(std::uint64_t seed = 0x6D9A4C3B2E1F0857ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    EHW_ASSERT(bound > 0, "below() needs a positive bound");
    // 128-bit multiply-shift; rejection loop for exactness.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed interval [lo, hi].
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    EHW_ASSERT(lo <= hi, "range() needs lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// One uniformly random 8-bit pixel; used by the dummy (faulty) PE.
  [[nodiscard]] std::uint8_t byte() noexcept {
    return static_cast<std::uint8_t>((*this)() >> 56);
  }

  /// Derives an independent child stream. Mixing the salt through
  /// SplitMix64 keeps sibling streams decorrelated.
  [[nodiscard]] Rng split(std::uint64_t salt) noexcept {
    std::uint64_t sm = (*this)() ^ (salt * 0x9E3779B97F4A7C15ULL);
    return Rng(splitmix64(sm));
  }

  /// The raw xoshiro256** state, for checkpoint/restore: a stream resumed
  /// via set_state continues the exact draw sequence it was saved at.
  using State = std::array<std::uint64_t, 4>;
  [[nodiscard]] const State& state() const noexcept { return state_; }
  void set_state(const State& state) noexcept {
    EHW_ASSERT(state[0] != 0 || state[1] != 0 || state[2] != 0 ||
                   state[3] != 0,
               "all-zero xoshiro state is a fixed point");
    state_ = state;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Stateless hash of (seed, salt...); handy for content-derived seeds such
/// as per-PE fault randomness that must not depend on call order.
[[nodiscard]] std::uint64_t hash_mix(std::uint64_t seed,
                                     std::uint64_t a = 0, std::uint64_t b = 0,
                                     std::uint64_t c = 0);

}  // namespace ehw
