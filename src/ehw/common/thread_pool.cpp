#include "ehw/common/thread_pool.hpp"

#include <algorithm>

namespace ehw {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    if (task.bulk != nullptr) {
      try {
        task.bulk(task.ctx, task.lo, task.hi);
      } catch (...) {
        task.state->record_error();
      }
      task.state->done.count_down();
    } else {
      task.generic();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ehw
