#include "ehw/common/thread_pool.hpp"

#include <algorithm>

namespace ehw {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, size()));
  if (chunks <= 1 || n < 2) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  const std::size_t per = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace ehw
