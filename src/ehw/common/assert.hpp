#pragma once
// Lightweight contract checking used across the library.
//
// EHW_REQUIRE  - precondition check, always on (throws std::logic_error).
// EHW_ASSERT   - internal invariant, compiled out in NDEBUG builds.
//
// We throw instead of aborting so that unit tests can assert on violations
// and so that a misconfigured platform surfaces a catchable diagnostic.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ehw::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& msg) {
  std::ostringstream os;
  os << kind << " violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " - " << msg;
  throw std::logic_error(os.str());
}

}  // namespace ehw::detail

#define EHW_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::ehw::detail::contract_failure("precondition", #expr, __FILE__,      \
                                      __LINE__, (msg));                     \
  } while (false)

#ifdef NDEBUG
#define EHW_ASSERT(expr, msg) \
  do {                        \
  } while (false)
#else
#define EHW_ASSERT(expr, msg)                                             \
  do {                                                                    \
    if (!(expr))                                                          \
      ::ehw::detail::contract_failure("invariant", #expr, __FILE__,       \
                                      __LINE__, (msg));                   \
  } while (false)
#endif
