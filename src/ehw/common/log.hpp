#pragma once
// Tiny leveled logger. The self-healing controllers narrate their state
// machines through this so that examples and benches can show the healing
// sequence the paper describes (detect -> scrub -> classify -> recover).

#include <sstream>
#include <string>

namespace ehw {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded. Defaults to kWarn so
/// tests stay quiet; examples raise it to kInfo.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one line ("[level] message") to stderr if enabled.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Ts>
void log_fmt(LogLevel level, const Ts&... parts) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << parts);
  log_line(level, os.str());
}
}  // namespace detail

template <typename... Ts>
void log_debug(const Ts&... parts) {
  detail::log_fmt(LogLevel::kDebug, parts...);
}
template <typename... Ts>
void log_info(const Ts&... parts) {
  detail::log_fmt(LogLevel::kInfo, parts...);
}
template <typename... Ts>
void log_warn(const Ts&... parts) {
  detail::log_fmt(LogLevel::kWarn, parts...);
}
template <typename... Ts>
void log_error(const Ts&... parts) {
  detail::log_fmt(LogLevel::kError, parts...);
}

}  // namespace ehw
