#include "ehw/common/work_steal.hpp"

#include <algorithm>

#include "ehw/common/fault.hpp"

namespace ehw {
namespace {

/// Which pool (and which of its workers) the current thread is, so
/// submit() can route a worker's own submissions to its own deque.
thread_local WorkStealPool* tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;

}  // namespace

WorkStealPool::WorkStealPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(
        2, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealPool::~WorkStealPool() {
  {
    std::lock_guard lock(idle_mutex_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkStealPool::submit(Task task) {
  const std::size_t target =
      tls_pool == this
          ? tls_worker
          : next_external_.fetch_add(1, std::memory_order_relaxed) %
                workers_.size();
  {
    std::lock_guard lock(workers_[target]->mutex);
    workers_[target]->deque.push_back(std::move(task));
  }
  {
    std::lock_guard lock(idle_mutex_);
    ++queued_;
  }
  idle_cv_.notify_one();
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.submitted;
  }
}

WorkStealPool::Task WorkStealPool::steal_from(std::size_t self,
                                              std::size_t victim) {
  // Raid up to half the victim's queue, oldest first; the first raided
  // task runs immediately, the rest refill our own deque in order.
  std::vector<Task> raided;
  {
    std::lock_guard lock(workers_[victim]->mutex);
    auto& q = workers_[victim]->deque;
    if (q.empty()) return nullptr;
    const std::size_t take = (q.size() + 1) / 2;
    raided.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      raided.push_back(std::move(q.front()));
      q.pop_front();
    }
  }
  Task first = std::move(raided.front());
  if (raided.size() > 1) {
    std::lock_guard lock(workers_[self]->mutex);
    auto& own = workers_[self]->deque;
    for (std::size_t i = 1; i < raided.size(); ++i) {
      own.push_back(std::move(raided[i]));
    }
  }
  {
    std::lock_guard lock(stats_mutex_);
    stats_.stolen += raided.size();
    ++stats_.steal_batches;
  }
  return first;
}

void WorkStealPool::worker_loop(std::size_t self) {
  tls_pool = this;
  tls_worker = self;
  const std::size_t n = workers_.size();
  for (;;) {
    Task task;
    {
      // Own deque first, back first: the task this worker queued last
      // (typically the job admitted when its previous job finished) is
      // the cache-warm one.
      std::lock_guard lock(workers_[self]->mutex);
      auto& own = workers_[self]->deque;
      if (!own.empty()) {
        task = std::move(own.back());
        own.pop_back();
      }
    }
    if (!task) {
      for (std::size_t k = 1; k < n && !task; ++k) {
        task = steal_from(self, (self + k) % n);
      }
    }
    if (task) {
      {
        std::lock_guard lock(idle_mutex_);
        --queued_;
      }
      fault::maybe_stall(fault::Site::kTaskDelay);
      bool threw = false;
      try {
        task();
      } catch (...) {
        // A throwing task must never terminate the worker (and with it
        // the daemon). The task's owner is responsible for surfacing the
        // failure; here it is contained and counted.
        threw = true;
      }
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.executed;
        if (threw) ++stats_.task_exceptions;
      }
      continue;
    }
    std::unique_lock lock(idle_mutex_);
    if (stop_ && queued_ == 0) return;
    // queued_ > 0 means a task landed between our scan and the lock:
    // rescan instead of sleeping (queued_ only moves under this mutex,
    // so the wakeup cannot be lost).
    if (queued_ == 0) {
      idle_cv_.wait(lock, [this] { return queued_ > 0 || stop_; });
    }
  }
}

WorkStealPool::Stats WorkStealPool::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

WorkStealPool& WorkStealPool::shared() {
  static WorkStealPool pool;
  return pool;
}

}  // namespace ehw
