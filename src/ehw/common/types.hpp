#pragma once
// Foundational scalar types shared by every MPA-EHW module.

#include <cstdint>
#include <cstddef>

namespace ehw {

/// 8-bit grayscale pixel, the only data type the processing arrays operate on.
using Pixel = std::uint8_t;

/// Aggregated Mean Absolute Error ("pixel aggregated MAE" in the paper):
/// the sum over the image of |output - reference|. Lower is better; 0 means
/// the two images are identical. For a 256x256 image the worst case is
/// 256*256*255 < 2^25, so uint64 never overflows even for huge frames.
using Fitness = std::uint64_t;

/// Sentinel for "no fitness measured yet" / invalid candidate.
inline constexpr Fitness kInvalidFitness = ~Fitness{0};

/// A generation index inside an evolutionary run.
using Generation = std::uint64_t;

}  // namespace ehw
