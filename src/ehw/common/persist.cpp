#include "ehw/common/persist.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace ehw {
namespace {

std::string errno_message(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

std::string ensure_directory(const std::string& path) {
  if (path.empty()) return "ensure_directory: empty path";
  // Walk the path component by component, creating as we go.
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    prefix.assign(path, 0, end);
    pos = end + 1;
    if (prefix.empty()) continue;  // leading '/' of an absolute path
    if (::mkdir(prefix.c_str(), 0777) == 0 || errno == EEXIST) continue;
    return errno_message("mkdir", prefix);
  }
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return "ensure_directory: not a directory: " + path;
  }
  return "";
}

std::string atomic_write_file(const std::string& path,
                              const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) return errno_message("open", tmp);
  std::size_t written = 0;
  while (written < contents.size()) {
    const ::ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = errno_message("write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return err;
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: rename is atomic but only durable if the data it
  // points to has reached the disk first.
  if (::fsync(fd) != 0) {
    const std::string err = errno_message("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return err;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = errno_message("rename", path);
    ::unlink(tmp.c_str());
    return err;
  }
  return "";
}

std::string read_file_text(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "read " + path + ": cannot open";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return "read " + path + ": I/O error";
  out = buffer.str();
  return "";
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

bool remove_file(const std::string& path) {
  return ::unlink(path.c_str()) == 0 || errno == ENOENT;
}

}  // namespace ehw
