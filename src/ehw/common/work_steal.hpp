#pragma once
// WorkStealPool — the shared task-execution core the multi-mission
// scheduler and the service daemon run job bodies on.
//
// Why not thread-per-job: a daemon under swarm load used to create (and
// destroy) one host thread per admitted mission. Thread churn is pure
// overhead at tens of missions per second, and an adversarial burst can
// exhaust the process thread limit. Why not the fork/join ThreadPool: job
// bodies are long-running, independent tasks, not data-parallel chunks
// with a barrier — the right shape is a task pool whose workers keep
// running whatever is available.
//
// Structure (the classic work-stealing deque arrangement, cf. the
// FPGA-cluster dispatchers of arXiv:1412.5384):
//   * one deque per worker; a worker pushes and pops its OWN deque at the
//     back (LIFO — a job admitted by a finishing job runs immediately,
//     cache-warm, on the same worker);
//   * an idle worker STEALS from the FRONT of a victim's deque (FIFO —
//     the oldest queued task migrates first), taking HALF the victim's
//     queue in one raid so a burst submitted to one worker rebalances in
//     O(log n) steals instead of n;
//   * external (non-worker) submits distribute round-robin.
// Deques are small-mutex-guarded rather than lock-free: queue operations
// are nanoseconds against multi-millisecond mission bodies, and the
// mutexes keep the pool trivially TSan-clean.
//
// Workers are bounded by hardware concurrency (never fewer than 2, so a
// long-running task cannot serialize a single-core host). Tasks must not
// BLOCK on other tasks' completion — job-to-job waits belong in the
// ArrayPool admission layer, which only submits runnable bodies.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ehw {

class WorkStealPool {
 public:
  using Task = std::function<void()>;

  /// Creates `threads` workers; 0 means
  /// max(2, std::thread::hardware_concurrency()).
  explicit WorkStealPool(std::size_t threads = 0);
  /// Finishes every queued task, then joins the workers.
  ~WorkStealPool();

  WorkStealPool(const WorkStealPool&) = delete;
  WorkStealPool& operator=(const WorkStealPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task: onto the calling worker's own deque when invoked
  /// from inside this pool (the admission-chain fast path), round-robin
  /// across workers otherwise. Completion is observed by the caller's own
  /// bookkeeping (e.g. ArrayPool's pending-job counter) — the pool
  /// deliberately has no per-task futures on this path.
  void submit(Task task);

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t executed = 0;
    /// Tasks that ran on a different worker than they were queued on.
    std::uint64_t stolen = 0;
    /// Steal raids (each migrates up to half a victim's deque).
    std::uint64_t steal_batches = 0;
    /// Tasks that escaped with an exception. Task bodies own their error
    /// handling (ArrayPool maps mission failures to failed results); a
    /// throw reaching the worker is a task bug — counted and contained
    /// here so it can never take the process down.
    std::uint64_t task_exceptions = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Process-wide pool sized to the machine; what every ArrayPool and
  /// service daemon uses unless given a dedicated instance.
  static WorkStealPool& shared();

 private:
  struct Worker {
    mutable std::mutex mutex;
    std::deque<Task> deque;
  };

  void worker_loop(std::size_t self);
  /// Moves up to half of `victim`'s queue (front first) onto `self`'s
  /// deque and returns the first raided task to run immediately; null
  /// when the victim was empty.
  Task steal_from(std::size_t self, std::size_t victim);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::size_t queued_ = 0;  // tasks sitting in deques (guarded by idle_mutex_)
  bool stop_ = false;       // guarded by idle_mutex_
  std::atomic<std::uint64_t> next_external_{0};
  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace ehw
