#pragma once
// Minimal command-line flag parsing for bench harnesses and examples.
// Supports --flag, --key=value and --key value forms.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ehw {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& flag) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

  /// Positional (non --key) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// The program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace ehw
