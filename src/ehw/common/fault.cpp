#include "ehw/common/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "ehw/common/assert.hpp"
#include "ehw/common/rng.hpp"

namespace ehw::fault {
namespace {

struct SiteCounters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fired{0};
};

// The installed plan lives in static storage guarded by g_enabled: the
// plan (and stall duration) only mutate while disabled, so readers that
// observed g_enabled == true see a fully written plan (install uses a
// release store; should_fire's acquire load pairs with it).
std::mutex g_install_mutex;
FaultPlan g_plan;
std::array<SiteCounters, kSiteCount> g_counters;

constexpr const char* kSiteNames[kSiteCount] = {
    "sock_read_error", "sock_read_stall", "sock_write_error",
    "sock_write_stall", "journal_fsync",  "checkpoint_io",
    "task_throw",       "task_delay",     "lane_seu",
    "poll_error",       "backend_hello",  "oversize_line",
};

[[nodiscard]] bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~std::uint64_t{0} - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

[[nodiscard]] bool parse_prob(std::string_view text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const std::string copy(text);
  const double value = std::strtod(copy.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  if (!(value >= 0.0 && value <= 1.0)) return false;
  out = value;
  return true;
}

/// One rule clause: "key:value[,key:value...]" applied onto `rule`.
[[nodiscard]] std::string parse_rule(std::string_view body, SiteRule& rule) {
  while (!body.empty()) {
    const std::size_t comma = body.find(',');
    const std::string_view item =
        comma == std::string_view::npos ? body : body.substr(0, comma);
    body = comma == std::string_view::npos ? std::string_view{}
                                           : body.substr(comma + 1);
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) {
      return "rule item '" + std::string(item) + "' needs key:value";
    }
    const std::string_view key = item.substr(0, colon);
    const std::string_view value = item.substr(colon + 1);
    if (key == "after") {
      if (!parse_u64(value, rule.after)) return "bad after value";
    } else if (key == "every") {
      if (!parse_u64(value, rule.every) || rule.every == 0) {
        return "bad every value (need >= 1)";
      }
    } else if (key == "count") {
      if (!parse_u64(value, rule.count)) return "bad count value";
    } else if (key == "prob") {
      if (!parse_prob(value, rule.prob)) {
        return "bad prob value (need 0..1)";
      }
    } else {
      return "unknown rule key '" + std::string(key) + "'";
    }
  }
  return {};
}

}  // namespace

const char* site_name(Site site) noexcept {
  const auto index = static_cast<std::size_t>(site);
  return index < kSiteCount ? kSiteNames[index] : "?";
}

bool parse_site(std::string_view name, Site& out) noexcept {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (name == kSiteNames[i]) {
      out = static_cast<Site>(i);
      return true;
    }
  }
  if (name == "fsync") {  // common shorthand
    out = Site::kJournalFsync;
    return true;
  }
  return false;
}

std::string parse_plan(std::string_view spec, FaultPlan& out) {
  FaultPlan plan;
  while (!spec.empty()) {
    const std::size_t semi = spec.find(';');
    std::string_view clause =
        semi == std::string_view::npos ? spec : spec.substr(0, semi);
    spec = semi == std::string_view::npos ? std::string_view{}
                                          : spec.substr(semi + 1);
    while (!clause.empty() && clause.front() == ' ') clause.remove_prefix(1);
    while (!clause.empty() && clause.back() == ' ') clause.remove_suffix(1);
    if (clause.empty()) continue;

    const std::size_t eq = clause.find('=');
    const std::string_view name =
        eq == std::string_view::npos ? clause : clause.substr(0, eq);
    const std::string_view body =
        eq == std::string_view::npos ? std::string_view{}
                                     : clause.substr(eq + 1);

    if (name == "seed") {
      if (!parse_u64(body, plan.seed)) return "bad seed value";
      continue;
    }
    if (name == "stall-ms") {
      std::uint64_t ms = 0;
      if (!parse_u64(body, ms) || ms > 600000) return "bad stall-ms value";
      plan.stall_ms = static_cast<std::uint32_t>(ms);
      continue;
    }

    Site site{};
    if (!parse_site(name, site)) {
      return "unknown fault site '" + std::string(name) + "'";
    }
    SiteRule rule;
    rule.armed = true;
    if (eq != std::string_view::npos) {
      const std::string error = parse_rule(body, rule);
      if (!error.empty()) {
        return std::string(name) + ": " + error;
      }
    }
    plan.rule(site) = rule;
  }
  out = plan;
  return {};
}

namespace detail {

std::atomic<bool> g_enabled{false};

bool should_fire_slow(Site site) noexcept {
  const auto index = static_cast<std::size_t>(site);
  if (index >= kSiteCount) return false;
  // Re-check with acquire so the plan written before the release store of
  // g_enabled is visible.
  if (!g_enabled.load(std::memory_order_acquire)) return false;
  const SiteRule& rule = g_plan.rules[index];
  SiteCounters& counters = g_counters[index];
  const std::uint64_t hit =
      counters.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!rule.armed) return false;
  if (hit <= rule.after) return false;
  if ((hit - rule.after - 1) % rule.every != 0) return false;
  if (rule.prob < 1.0) {
    // Stateless seeded coin: deterministic per (plan, site, hit index),
    // independent of which thread observed the hit.
    const std::uint64_t draw =
        hash_mix(g_plan.seed, index, hit) >> 11;
    if (static_cast<double>(draw) * 0x1.0p-53 >= rule.prob) return false;
  }
  if (counters.fired.fetch_add(1, std::memory_order_relaxed) >= rule.count) {
    counters.fired.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

}  // namespace detail

void install(const FaultPlan& plan) {
  const std::lock_guard<std::mutex> lock(g_install_mutex);
  detail::g_enabled.store(false, std::memory_order_release);
  g_plan = plan;
  for (SiteCounters& counters : g_counters) {
    counters.hits.store(0, std::memory_order_relaxed);
    counters.fired.store(0, std::memory_order_relaxed);
  }
  detail::g_enabled.store(true, std::memory_order_release);
}

void uninstall() noexcept {
  const std::lock_guard<std::mutex> lock(g_install_mutex);
  detail::g_enabled.store(false, std::memory_order_release);
}

bool active() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void maybe_stall(Site site) noexcept {
  if (should_fire(site)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms()));
  }
}

std::uint64_t hits(Site site) noexcept {
  const auto index = static_cast<std::size_t>(site);
  return index < kSiteCount
             ? g_counters[index].hits.load(std::memory_order_relaxed)
             : 0;
}

std::uint64_t fired(Site site) noexcept {
  const auto index = static_cast<std::size_t>(site);
  return index < kSiteCount
             ? g_counters[index].fired.load(std::memory_order_relaxed)
             : 0;
}

std::uint32_t stall_ms() noexcept { return g_plan.stall_ms; }

std::uint64_t plan_seed() noexcept { return g_plan.seed; }

ScopedPlan::ScopedPlan(std::string_view spec) {
  FaultPlan plan;
  const std::string error = parse_plan(spec, plan);
  EHW_REQUIRE(error.empty(), "bad fault plan: " + error);
  install(plan);
}

}  // namespace ehw::fault
