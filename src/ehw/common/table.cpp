#include "ehw/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "ehw/common/assert.hpp"

namespace ehw {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  EHW_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  EHW_REQUIRE(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(width[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace ehw
