#include "ehw/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "ehw/common/assert.hpp"

namespace ehw {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  EHW_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  EHW_REQUIRE(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(width[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_duration_ns(std::uint64_t ns) {
  char out[32];
  const auto one_decimal = [&](double value, const char* unit) {
    std::snprintf(out, sizeof out, "%.1f%s", value, unit);
    return std::string(out);
  };
  if (ns < 1000) return std::to_string(ns) + "ns";
  if (ns < 1000ULL * 1000) {
    return one_decimal(static_cast<double>(ns) / 1e3, "us");
  }
  if (ns < 1000ULL * 1000 * 1000) {
    return one_decimal(static_cast<double>(ns) / 1e6, "ms");
  }
  const std::uint64_t seconds = ns / 1000000000ULL;
  if (seconds < 60) {
    return one_decimal(static_cast<double>(ns) / 1e9, "s");
  }
  if (seconds < 3600) {
    std::snprintf(out, sizeof out, "%llum%02llus",
                  static_cast<unsigned long long>(seconds / 60),
                  static_cast<unsigned long long>(seconds % 60));
    return std::string(out);
  }
  if (seconds < 86400) {
    std::snprintf(out, sizeof out, "%lluh%02llum",
                  static_cast<unsigned long long>(seconds / 3600),
                  static_cast<unsigned long long>(seconds % 3600 / 60));
    return std::string(out);
  }
  std::snprintf(out, sizeof out, "%llud%02lluh",
                static_cast<unsigned long long>(seconds / 86400),
                static_cast<unsigned long long>(seconds % 86400 / 3600));
  return std::string(out);
}

std::string format_duration_ms(std::uint64_t ms) {
  // Saturate instead of overflowing for absurd inputs (u64 ms * 1e6).
  constexpr std::uint64_t kMax = ~std::uint64_t{0} / 1000000ULL;
  return format_duration_ns(ms < kMax ? ms * 1000000ULL : ~std::uint64_t{0});
}

}  // namespace ehw
