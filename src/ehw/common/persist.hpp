#pragma once
// Small durable-file primitives shared by the mission journal and the
// checkpoint store: create-directory-on-demand, atomic whole-file
// replacement (write temp + fsync + rename), and slurp-to-string.
//
// All functions report failure through a returned error string ("" on
// success) instead of throwing: callers are daemons that must degrade
// gracefully when the journal volume misbehaves.

#include <string>

namespace ehw {

/// mkdir -p equivalent; succeeds if the directory already exists.
[[nodiscard]] std::string ensure_directory(const std::string& path);

/// Atomically replaces `path` with `contents`: writes `path.tmp`, fsyncs
/// it, then rename(2)s over the target so readers never observe a torn
/// file — the property checkpoint restore depends on after a kill -9.
[[nodiscard]] std::string atomic_write_file(const std::string& path,
                                            const std::string& contents);

/// Reads a whole file into `out`. Missing file is an error (callers that
/// treat absence as "no checkpoint yet" check with file_exists first).
[[nodiscard]] std::string read_file_text(const std::string& path,
                                         std::string& out);

[[nodiscard]] bool file_exists(const std::string& path);

/// Best-effort unlink; returns false only when the file existed but could
/// not be removed.
bool remove_file(const std::string& path);

}  // namespace ehw
