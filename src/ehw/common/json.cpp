#include "ehw/common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace ehw {
namespace {

constexpr std::size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing garbage after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError(what, pos_);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object(std::size_t depth) {
    ++pos_;  // '{'
    Json::Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      if (peek() != ':') fail("expected ':' after object key");
      ++pos_;
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return Json(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(std::size_t depth) {
    ++pos_;  // '['
    Json::Array items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return Json(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must pair with \uDC00-\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired UTF-16 surrogate");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("invalid UTF-16 surrogate pair");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [this] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_start = pos_;
    if (digits() == 0) fail("invalid number");
    // JSON forbids leading zeros ("042").
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      pos_ = int_start;
      fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("expected digits after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("expected exponent digits");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    // Overflowing literals ("1e400") would become inf, which dump()
    // cannot represent — reject rather than silently change the value.
    if (!std::isfinite(value)) fail("number out of range");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out.push_back('"');
}

void dump_number(double n, std::string& out) {
  if (!std::isfinite(n)) {
    out += "null";  // JSON has no NaN/Inf; null is the least-wrong frame
    return;
  }
  char buf[32];
  if (json_number_is_exact_int(n)) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(n));
  } else {
    // %.17g round-trips every double; trim to the shortest that does.
    std::snprintf(buf, sizeof buf, "%.17g", n);
    double reparsed = 0.0;
    for (int precision = 15; precision <= 16; ++precision) {
      char shorter[32];
      std::snprintf(shorter, sizeof shorter, "%.*g", precision, n);
      std::sscanf(shorter, "%lf", &reparsed);
      if (reparsed == n) {
        std::memcpy(buf, shorter, sizeof shorter);
        break;
      }
    }
  }
  out += buf;
}

void dump_value(const Json& value, std::string& out) {
  switch (value.type()) {
    case Json::Type::kNull: out += "null"; break;
    case Json::Type::kBool: out += value.as_bool() ? "true" : "false"; break;
    case Json::Type::kNumber: dump_number(value.as_number(), out); break;
    case Json::Type::kString: dump_string(value.as_string(), out); break;
    case Json::Type::kArray: {
      out.push_back('[');
      const Json::Array& items = value.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out.push_back(',');
        dump_value(items[i], out);
      }
      out.push_back(']');
      break;
    }
    case Json::Type::kObject: {
      out.push_back('{');
      const Json::Object& members = value.as_object();
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i != 0) out.push_back(',');
        dump_string(members[i].first, out);
        out.push_back(':');
        dump_value(members[i].second, out);
      }
      out.push_back('}');
      break;
    }
  }
}

[[noreturn]] void type_error(const char* wanted) {
  throw JsonError(std::string("JSON value is not ") + wanted, 0);
}

}  // namespace

bool json_number_is_exact_int(double n) noexcept {
  return std::isfinite(n) && n == std::floor(n) && std::fabs(n) < 0x1p53;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

bool Json::as_bool() const {
  if (!is_bool()) type_error("a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) type_error("a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<Object>(value_);
}

Json::Array& Json::as_array() {
  if (!is_array()) type_error("an array");
  return std::get<Array>(value_);
}

Json::Object& Json::as_object() {
  if (!is_object()) type_error("an object");
  return std::get<Object>(value_);
}

const Json* Json::get(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  const Object& members = std::get<Object>(value_);
  const Json* found = nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) found = &v;
  }
  return found;
}

std::string Json::get_string(std::string_view key,
                             const std::string& fallback) const {
  const Json* v = get(key);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

double Json::get_number(std::string_view key, double fallback) const {
  const Json* v = get(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

bool Json::get_bool(std::string_view key, bool fallback) const {
  const Json* v = get(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

Json& Json::set(std::string key, Json value) {
  Object& members = as_object();
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    if (it->first == key) {
      it->second = std::move(value);
      return *this;
    }
  }
  members.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  as_array().push_back(std::move(value));
  return *this;
}

Json json_u64(std::uint64_t value) { return Json(std::to_string(value)); }

Json json_i64(std::int64_t value) { return Json(std::to_string(value)); }

namespace {

/// Strict decimal parse: every character consumed, no sign/whitespace,
/// overflow rejected. Keeps journal/checkpoint parsing unambiguous.
bool parse_u64_digits(const std::string& text, std::uint64_t& out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

}  // namespace

bool json_read_u64(const Json* field, std::uint64_t& out) {
  if (field == nullptr) return false;
  if (field->is_string()) return parse_u64_digits(field->as_string(), out);
  if (field->is_number()) {
    const double n = field->as_number();
    if (n < 0 || !json_number_is_exact_int(n)) return false;
    out = static_cast<std::uint64_t>(n);
    return true;
  }
  return false;
}

bool json_read_i64(const Json* field, std::int64_t& out) {
  if (field == nullptr) return false;
  if (field->is_string()) {
    const std::string& text = field->as_string();
    const bool negative = !text.empty() && text.front() == '-';
    std::uint64_t magnitude = 0;
    if (!parse_u64_digits(negative ? text.substr(1) : text, magnitude)) {
      return false;
    }
    const auto limit =
        static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
    if (negative) {
      if (magnitude > limit + 1) return false;
      out = magnitude == limit + 1
                ? std::numeric_limits<std::int64_t>::min()
                : -static_cast<std::int64_t>(magnitude);
    } else {
      if (magnitude > limit) return false;
      out = static_cast<std::int64_t>(magnitude);
    }
    return true;
  }
  if (field->is_number()) {
    const double n = field->as_number();
    if (!json_number_is_exact_int(n)) return false;
    out = static_cast<std::int64_t>(n);
    return true;
  }
  return false;
}

}  // namespace ehw
