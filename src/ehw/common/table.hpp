#pragma once
// ASCII table printer. Every figure-reproduction bench prints its series as
// a table whose rows mirror the paper's plot, so results are diffable and
// greppable from bench_output.txt.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ehw {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string integer(std::uint64_t v);

  /// Renders with column alignment and +---+ rules.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Human-readable duration, scaled to the leading unit: "815ns",
/// "12.3us", "45.6ms", "3.2s", "5m12s", "2h03m", "1d04h". Shared by the
/// mission age columns of `mpa ps`/`mpa stats`/`mpa top` and by trace
/// summaries, so every view renders time the same way.
[[nodiscard]] std::string format_duration_ns(std::uint64_t ns);

/// format_duration_ns over milliseconds (the protocol's age fields).
[[nodiscard]] std::string format_duration_ms(std::uint64_t ms);

}  // namespace ehw
