#include "ehw/common/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace ehw {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "";  // bare flag
    }
  }
}

bool Cli::has(const std::string& flag) const { return kv_.count(flag) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() || it->second.empty() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

}  // namespace ehw
