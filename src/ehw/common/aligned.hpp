#pragma once
// Minimal aligned allocator so std::vector can back cache-line-aligned
// buffers (image rows, kernel scratch) without losing value semantics.
// C++17 aligned operator new/delete do the heavy lifting.

#include <cstddef>
#include <new>

namespace ehw {

template <typename T, std::size_t Align>
struct AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// Cache-line alignment used by the SIMD row kernels: rows that start on
/// a 64-byte boundary never split a cache line under any vector width up
/// to AVX-512.
inline constexpr std::size_t kCacheLineBytes = 64;

}  // namespace ehw
