#include "ehw/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "ehw/common/assert.hpp"

namespace ehw {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double percentile_of(std::vector<double> xs, double p) {
  EHW_REQUIRE(!xs.empty(), "percentile of empty sample");
  EHW_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double pos = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double min_of(const std::vector<double>& xs) {
  EHW_REQUIRE(!xs.empty(), "min of empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  EHW_REQUIRE(!xs.empty(), "max of empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

}  // namespace ehw
