#include "ehw/obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace ehw::obs {

namespace detail {
std::atomic<bool> g_armed{false};
thread_local ProfileCollector* t_profile = nullptr;
}  // namespace detail

void ProfileCollector::add(const char* name, std::uint64_t dur_ns) {
  std::lock_guard lock(mutex_);
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      ++entry.count;
      entry.total_ns += dur_ns;
      return;
    }
  }
  entries_.push_back(Entry{name, 1, dur_ns});
}

bool ProfileCollector::empty() const {
  std::lock_guard lock(mutex_);
  return entries_.empty();
}

Json ProfileCollector::to_json() const {
  std::lock_guard lock(mutex_);
  Json phases = Json::array();
  for (const Entry& entry : entries_) {
    Json phase = Json::object();
    phase.set("phase", entry.name);
    phase.set("count", entry.count);
    phase.set("total_ns", json_u64(entry.total_ns));
    phases.push_back(std::move(phase));
  }
  Json out = Json::object();
  out.set("phases", std::move(phases));
  return out;
}

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

std::uint64_t Tracer::now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

Tracer::ThreadRing& Tracer::local_ring() {
  // The shared_ptr keeps a thread's spans exportable after the thread
  // exits (job-body workers come and go; their spans should not).
  thread_local std::shared_ptr<ThreadRing> ring = [this] {
    auto fresh = std::make_shared<ThreadRing>();
    fresh->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(mutex_);
    rings_.push_back(fresh);
    return fresh;
  }();
  return *ring;
}

void Tracer::record(const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns) {
  ThreadRing& ring = local_ring();
  std::lock_guard lock(ring.mutex);
  ring.spans[ring.next % kRingCapacity] = Span{name, start_ns, dur_ns};
  ++ring.next;
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard ring_lock(ring->mutex);
    ring->next = 0;
  }
}

std::uint64_t Tracer::recorded() const {
  std::uint64_t total = 0;
  std::lock_guard lock(mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard ring_lock(ring->mutex);
    total += ring->next;
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard lock(mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard ring_lock(ring->mutex);
    if (ring->next > kRingCapacity) total += ring->next - kRingCapacity;
  }
  return total;
}

Json Tracer::export_chrome() const {
  Json events = Json::array();
  std::lock_guard lock(mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard ring_lock(ring->mutex);
    const std::uint64_t count = std::min<std::uint64_t>(ring->next,
                                                        kRingCapacity);
    const std::uint64_t first = ring->next - count;
    for (std::uint64_t i = first; i < ring->next; ++i) {
      const Span& span = ring->spans[i % kRingCapacity];
      Json event = Json::object();
      event.set("name", span.name);
      event.set("ph", "X");
      event.set("cat", "ehw");
      // trace_event ts/dur are microseconds; doubles carry sub-µs
      // fractions exactly enough for display.
      event.set("ts", static_cast<double>(span.start_ns) / 1e3);
      event.set("dur", static_cast<double>(span.dur_ns) / 1e3);
      event.set("pid", 1);
      event.set("tid", ring->tid);
      events.push_back(std::move(event));
    }
  }
  Json out = Json::object();
  out.set("traceEvents", std::move(events));
  out.set("displayTimeUnit", "ms");
  return out;
}

}  // namespace ehw::obs
