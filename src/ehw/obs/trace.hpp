#pragma once
// obs::Tracer — lock-light span tracing for the telemetry subsystem.
//
// Instrumented phases (queue-wait, compile, wave-eval, memo lookup,
// checkpoint-write, journal-fsync, socket round-trips) drop
// EHW_TRACE_SPAN("name") RAII guards. When the tracer is DISARMED the
// guard costs one relaxed atomic load plus one thread-local pointer read
// — the fault.hpp fast-path discipline, verified by BM_TelemetryOverhead
// and the bench-diff gate. When ARMED, each completed span is appended
// to a fixed-size per-thread ring buffer behind a per-thread mutex that
// only the (rare) exporter ever contends, so recording threads never
// serialize against each other.
//
// Export is Chrome trace_event JSON ({"traceEvents":[{"ph":"X",...}]}),
// loadable in chrome://tracing and Perfetto, reachable via the service's
// `trace` protocol op and `mpa trace DUMP.json`. Rings wrap: a long run
// keeps its most recent kRingCapacity spans per thread and counts what
// it dropped.
//
// Mission profiles ride the same guards: while a ProfileCollector is
// installed on the current thread (the scheduler scopes one around each
// job body), every span also accumulates into a per-phase
// {count, total_ns} table, which becomes the optional "profile" section
// of the mission's result — phase breakdowns work even with the tracer
// disarmed, costing two clock reads per span only for profiled threads.
//
// Span names must be string LITERALS (static storage): rings store the
// pointer, never a copy.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ehw/common/json.hpp"

namespace ehw::obs {

struct Span {
  const char* name = nullptr;  // static storage (macro literal)
  std::uint64_t start_ns = 0;  // Tracer::now_ns() timebase
  std::uint64_t dur_ns = 0;
};

/// Per-mission phase accumulator. add() is called from the thread the
/// collector is installed on (the job-body thread); to_json() may run
/// later from a session thread — the mutex covers that hand-off.
class ProfileCollector {
 public:
  void add(const char* name, std::uint64_t dur_ns);
  [[nodiscard]] bool empty() const;
  /// {"phases":[{"phase":...,"count":...,"total_ns":"..."}]} with phases
  /// in first-seen order; total_ns as a decimal string (64-bit exact).
  [[nodiscard]] Json to_json() const;

 private:
  struct Entry {
    const char* name = nullptr;  // identity-compared (literals)
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

namespace detail {
extern std::atomic<bool> g_armed;
extern thread_local ProfileCollector* t_profile;
}  // namespace detail

/// Installs a ProfileCollector on the current thread for its lifetime
/// (restoring any previous one), so spans recorded by this thread also
/// feed the mission's phase breakdown.
class ProfileScope {
 public:
  explicit ProfileScope(ProfileCollector* collector) noexcept
      : previous_(detail::t_profile) {
    detail::t_profile = collector;
  }
  ~ProfileScope() { detail::t_profile = previous_; }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  ProfileCollector* previous_;
};

class Tracer {
 public:
  /// Spans kept per thread; older spans are overwritten (and counted as
  /// dropped) once a thread wraps.
  static constexpr std::size_t kRingCapacity = 4096;

  static Tracer& global();

  void arm() noexcept { detail::g_armed.store(true, std::memory_order_relaxed); }
  void disarm() noexcept {
    detail::g_armed.store(false, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool armed() noexcept {
    return detail::g_armed.load(std::memory_order_relaxed);
  }

  /// Monotonic nanoseconds since the process-wide trace epoch (first
  /// use); the timebase of every span and of mission age fields.
  [[nodiscard]] static std::uint64_t now_ns() noexcept;

  /// Appends one completed span to the calling thread's ring.
  void record(const char* name, std::uint64_t start_ns,
              std::uint64_t dur_ns);

  /// Drops every recorded span (rings stay registered).
  void clear();

  [[nodiscard]] std::uint64_t recorded() const;  // total ever recorded
  [[nodiscard]] std::uint64_t dropped() const;   // lost to wraparound

  /// Chrome trace_event export: {"traceEvents":[{"name","ph":"X","ts",
  /// "dur","pid","tid"},...],"displayTimeUnit":"ms"} — ts/dur in
  /// microseconds per the format. Spans merge across all thread rings.
  [[nodiscard]] Json export_chrome() const;

 private:
  struct ThreadRing {
    std::mutex mutex;
    std::array<Span, kRingCapacity> spans;
    std::uint64_t next = 0;  // total recorded; slot = next % capacity
    std::uint64_t tid = 0;   // stable per-thread export id
  };

  [[nodiscard]] ThreadRing& local_ring();

  mutable std::mutex mutex_;  // guards rings_ registration/iteration
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  std::atomic<std::uint64_t> next_tid_{1};
};

/// RAII span: near-free when the tracer is disarmed and no profile is
/// installed on this thread.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) noexcept {
    if (Tracer::armed() || detail::t_profile != nullptr) {
      name_ = name;
      start_ns_ = Tracer::now_ns();
    }
  }
  ~SpanGuard() {
    if (name_ == nullptr) return;
    const std::uint64_t dur = Tracer::now_ns() - start_ns_;
    if (detail::t_profile != nullptr) detail::t_profile->add(name_, dur);
    if (Tracer::armed()) Tracer::global().record(name_, start_ns_, dur);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

#define EHW_OBS_CONCAT_INNER(a, b) a##b
#define EHW_OBS_CONCAT(a, b) EHW_OBS_CONCAT_INNER(a, b)
/// Records the enclosing scope as a span named `name` (string literal).
#define EHW_TRACE_SPAN(name) \
  ::ehw::obs::SpanGuard EHW_OBS_CONCAT(ehw_trace_span_, __LINE__)(name)

}  // namespace ehw::obs
