#include "ehw/obs/metrics.hpp"

#include <cmath>
#include <sstream>

namespace ehw::obs {

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t next = seen + buckets[b];
    if (static_cast<double>(next) >= target) {
      if (b == 0) return 0.0;
      // Log-interpolate inside the bucket [2^(b-1), 2^b): the fraction
      // of the bucket's population below the target picks the point.
      const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
      const double frac =
          (target - static_cast<double>(seen)) /
          static_cast<double>(buckets[b]);
      return lo * (1.0 + frac);
    }
    seen = next;
  }
  return static_cast<double>(bucket_upper(kBuckets - 1));
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot out;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    out.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

/// Base metric name without any {label} suffix (for # TYPE lines).
std::string base_name(const std::string& name) {
  const std::size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Splices `extra` into the metric's label set: `name` -> `name{extra}`,
/// `name{a="b"}` -> `name{a="b",extra}`.
std::string with_label(const std::string& name, const std::string& extra) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) return name + "{" + extra + "}";
  std::string out = name;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

void type_line(std::ostream& os, const std::string& name, const char* type,
               std::string& last_base) {
  const std::string base = base_name(name);
  if (base == last_base) return;  // one TYPE line per family
  last_base = base;
  os << "# TYPE " << base << ' ' << type << '\n';
}

}  // namespace

std::string Registry::to_prometheus() const {
  std::ostringstream os;
  std::lock_guard lock(mutex_);
  std::string last_base;
  for (const auto& [name, metric] : counters_) {
    type_line(os, name, "counter", last_base);
    os << name << ' ' << metric->value() << '\n';
  }
  last_base.clear();
  for (const auto& [name, metric] : gauges_) {
    type_line(os, name, "gauge", last_base);
    os << name << ' ' << metric->value() << '\n';
  }
  last_base.clear();
  for (const auto& [name, metric] : histograms_) {
    const Histogram::Snapshot snap = metric->snapshot();
    type_line(os, name, "histogram", last_base);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (snap.buckets[b] == 0) continue;
      cumulative += snap.buckets[b];
      os << with_label(name + "_bucket",
                       "le=\"" + std::to_string(Histogram::bucket_upper(b)) +
                           "\"")
         << ' ' << cumulative << '\n';
    }
    os << with_label(name + "_bucket", "le=\"+Inf\"") << ' ' << snap.count
       << '\n';
    os << name << "_sum " << snap.sum << '\n';
    os << name << "_count " << snap.count << '\n';
  }
  return os.str();
}

Json Registry::to_json() const {
  std::lock_guard lock(mutex_);
  Json counters = Json::object();
  for (const auto& [name, metric] : counters_) {
    counters.set(name, json_u64(metric->value()));
  }
  Json gauges = Json::object();
  for (const auto& [name, metric] : gauges_) {
    gauges.set(name, metric->value());
  }
  Json histograms = Json::object();
  for (const auto& [name, metric] : histograms_) {
    const Histogram::Snapshot snap = metric->snapshot();
    Json h = Json::object();
    h.set("count", json_u64(snap.count));
    h.set("sum", json_u64(snap.sum));
    Json buckets = Json::array();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (snap.buckets[b] == 0) continue;
      Json pair = Json::array();
      pair.push_back(json_u64(Histogram::bucket_upper(b)));
      pair.push_back(json_u64(snap.buckets[b]));
      buckets.push_back(std::move(pair));
    }
    h.set("buckets", std::move(buckets));
    histograms.set(name, std::move(h));
  }
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

}  // namespace ehw::obs
