#pragma once
// obs::Registry — the metrics substrate of the telemetry subsystem:
// named counters, gauges and log-bucketed histograms that every layer
// (scheduler, service daemon, forwarder, CLI) records into and that the
// `mpa serve --metrics-port` endpoint exposes as Prometheus text.
//
// Scoping: a Registry is an ordinary object — the service daemon and the
// forwarder each own one, so two servers in one process (tests, benches,
// a forwarder in front of in-process backends) never mix their wire
// stats. Registry::global() is the process-wide instance for code with
// no natural owner.
//
// Cost model (the fault.hpp discipline): metric handles are references
// resolved ONCE (find-or-create under the registry mutex) and then held;
// every subsequent record is one relaxed atomic RMW — no locks, no
// lookups, no allocation on any hot path. Snapshot/exposition readers
// take relaxed loads, so a scrape racing live mutation sees each metric
// at some recent value without ever serializing writers (asserted by
// tests/obs_test.cpp under TSan).
//
// Histograms are log-bucketed: bucket b counts values whose bit width is
// b, i.e. [2^(b-1), 2^b) — 65 fixed buckets cover the full u64 range
// with one array index per record and exact merges. Quantiles are
// estimated by log-interpolation inside the winning bucket, which is
// within 2x of truth by construction (fine for latency triage).

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "ehw/common/json.hpp"

namespace ehw::obs {

/// Monotonically increasing event count. Relaxed-atomic; record cost is
/// one uncontended RMW.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, inflight missions, poll age...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram over u64 samples (latencies in ns, sizes...).
class Histogram {
 public:
  /// Bucket b counts samples of bit width b: bucket 0 holds the value 0,
  /// bucket b >= 1 holds [2^(b-1), 2^b - 1]. 65 buckets span all of u64.
  static constexpr std::size_t kBuckets = 65;

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Inclusive upper bound of bucket `b` (the Prometheus `le` edge).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t b) noexcept {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Point-in-time copy. Taken with relaxed loads: concurrent records
  /// may straddle the copy (a sample in `sum` but not yet its bucket),
  /// which a scrape tolerates; the copy itself is plain data.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    void merge(const Snapshot& other) noexcept {
      for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
      count += other.count;
      sum += other.sum;
    }
    [[nodiscard]] double mean() const noexcept {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Log-interpolated quantile estimate, q in [0,1].
    [[nodiscard]] double quantile(double q) const noexcept;
  };
  [[nodiscard]] Snapshot snapshot() const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Named metric index. Metric names follow Prometheus conventions and
/// may carry a label set verbatim: `mpa_backend_up{backend="2"}` — the
/// exposition writer splits the base name off for TYPE lines. Handles
/// returned by counter()/gauge()/histogram() are stable for the
/// registry's lifetime; resolve once, record forever.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Prometheus text exposition (content-type
  /// text/plain; version=0.0.4). Histograms emit cumulative
  /// `_bucket{le=...}` series over their non-empty buckets plus
  /// `le="+Inf"`, `_sum` and `_count`.
  [[nodiscard]] std::string to_prometheus() const;

  /// The same data as JSON (for protocol ops and tests):
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  /// "buckets":[[upper,count],...]}}}.
  [[nodiscard]] Json to_json() const;

  /// Process-wide registry for code with no natural owner.
  static Registry& global();

 private:
  mutable std::mutex mutex_;
  // std::map: deterministic (sorted) exposition order; unique_ptr:
  // stable addresses across rehash-free inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ehw::obs
